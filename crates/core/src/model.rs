use crate::{DetectionHead, FeatureEncoder, Rel2AttLayer, YolloConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yollo_detect::{label_anchors, sample_minibatch, AnchorGrid, BBox};
use yollo_nn::{Binder, Checkpoint, Module, ParamList};
use yollo_synthref::{Dataset, GroundingSample};
use yollo_tensor::{Element, Tensor, Var};
use yollo_text::Vocab;

/// The YOLLO one-stage visual-grounding model (Figure 2a).
///
/// See the crate-level documentation for the architecture walk-through and
/// a usage example.
#[derive(Debug)]
pub struct Yollo<E: Element = f64> {
    cfg: YolloConfig,
    encoder: FeatureEncoder<E>,
    layers: Vec<Rel2AttLayer<E>>,
    head: DetectionHead<E>,
    anchors: AnchorGrid,
    vocab: Vocab,
}

/// Differentiable outputs of one forward pass.
pub struct YolloOutput<'g, E: Element = f64> {
    /// Anchor confidence logits `[B, A]`.
    pub scores: Var<'g, E>,
    /// Anchor box offsets `[B, A, 4]`.
    pub offsets: Var<'g, E>,
    /// Raw image-attention values per Rel2Att layer, each `[B, m]`.
    pub att_layers: Vec<Var<'g, E>>,
}

/// Scalar loss components of Eq. (9).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LossParts {
    /// Attention loss `L_att` (Eq. 6).
    pub att: f64,
    /// Classification loss `L_cls` (Eq. 7).
    pub cls: f64,
    /// Regression loss `L_reg` (Eq. 8).
    pub reg: f64,
    /// `L_att + L_cls + λ·L_reg`.
    pub total: f64,
}

/// Serialised form of a trained model (config + vocabulary + weights).
#[derive(Debug, Serialize, Deserialize)]
struct SavedModel {
    config: YolloConfig,
    vocab: Vocab,
    checkpoint: Checkpoint,
}

impl Yollo {
    /// Builds a model with fresh weights. The vocabulary starts empty; use
    /// [`Yollo::for_dataset`] or [`Yollo::set_vocab`] before sentence-level
    /// inference.
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(cfg: YolloConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid YolloConfig");
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = FeatureEncoder::new(&cfg, &mut rng);
        let layers = (0..cfg.n_rel2att)
            .map(|i| {
                Rel2AttLayer::new(
                    &format!("rel2att.{i}"),
                    cfg.d_rel,
                    cfg.ffn_hidden,
                    cfg.ablation,
                    i + 1 < cfg.n_rel2att, // the last module skips T̃ (§3.2)
                    &mut rng,
                )
            })
            .collect();
        let head = DetectionHead::new(
            "head",
            cfg.d_rel,
            cfg.ffn_hidden / 2,
            cfg.anchors.per_cell(),
            &mut rng,
        );
        let anchors = AnchorGrid::generate(cfg.feat_h(), cfg.feat_w(), &cfg.anchors);
        Yollo {
            cfg,
            encoder,
            layers,
            head,
            anchors,
            vocab: Vocab::default(),
        }
    }

    /// Builds a model sized for `ds` and adopts its vocabulary.
    pub fn for_dataset(ds: &Dataset, seed: u64) -> Self {
        let cfg = YolloConfig::for_dataset(ds);
        let mut model = Yollo::new(cfg, seed);
        model.vocab = ds.build_vocab();
        model
    }

    /// The feature encoder (exposed for word2vec initialisation).
    pub fn encoder_mut(&mut self) -> &mut FeatureEncoder {
        &mut self.encoder
    }
}

impl<E: Element> Yollo<E> {
    /// The model's configuration.
    pub fn config(&self) -> &YolloConfig {
        &self.cfg
    }

    /// The vocabulary used for sentence-level inference.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// This model with every weight converted element-wise to dtype `F` —
    /// the f32 serve fast path is `model.cast::<f32>()`. Training state
    /// (gradients, optimiser moments) does not transfer; casting is for
    /// inference.
    pub fn cast<F: Element>(&self) -> Yollo<F> {
        Yollo {
            cfg: self.cfg.clone(),
            encoder: self.encoder.cast(),
            layers: self.layers.iter().map(Rel2AttLayer::cast).collect(),
            head: self.head.cast(),
            anchors: self.anchors.clone(),
            vocab: self.vocab.clone(),
        }
    }

    /// Replaces the vocabulary (must match `cfg.vocab_size`).
    ///
    /// # Panics
    /// Panics if the size disagrees with the embedding table.
    pub fn set_vocab(&mut self, vocab: Vocab) {
        assert_eq!(vocab.len(), self.cfg.vocab_size, "vocab size mismatch");
        self.vocab = vocab;
    }

    /// The anchor grid of the detection head.
    pub fn anchors(&self) -> &AnchorGrid {
        &self.anchors
    }

    /// The feature encoder.
    pub fn encoder(&self) -> &FeatureEncoder<E> {
        &self.encoder
    }

    /// One differentiable forward pass over a batch.
    ///
    /// `images` is `[B, C, H, W]`; `queries` holds `B` padded id sequences.
    pub fn forward<'g>(
        &self,
        bind: &Binder<'g, E>,
        images: Var<'g, E>,
        queries: &[Vec<usize>],
    ) -> YolloOutput<'g, E> {
        let _fwd = yollo_obs::span!("model.forward");
        let b = images.dims()[0];
        assert_eq!(b, queries.len(), "batch size mismatch");
        let (mut v, mut t, pad_mask) = {
            let _span = yollo_obs::span!("model.encoder");
            let _lat = yollo_obs::time_hist!("model.encoder_ns");
            let v = {
                let _s = yollo_obs::span!("encoder.image");
                self.encoder.encode_image(bind, images)
            };
            let t = {
                let _s = yollo_obs::span!("encoder.query");
                self.encoder.encode_query(bind, queries)
            };
            (v, t, self.encoder.pad_mask(queries))
        };
        let mut att_layers = Vec::with_capacity(self.layers.len());
        {
            let _span = yollo_obs::span!("model.rel2att");
            let _lat = yollo_obs::time_hist!("model.rel2att_ns");
            for layer in &self.layers {
                let _s = yollo_obs::span_dyn(layer.trace_name());
                let out = layer.forward(bind, v, t, Some(&pad_mask));
                v = out.v;
                t = out.t;
                att_layers.push(out.att_v);
            }
        }
        // reconstruct M̃ = [B, d, fh, fw] from Ṽ = [B, m, d]
        let feat =
            v.transpose()
                .reshape(&[b, self.cfg.d_rel, self.cfg.feat_h(), self.cfg.feat_w()]);
        let (scores, offsets) = {
            let _span = yollo_obs::span!("head.forward");
            let _lat = yollo_obs::time_hist!("model.head_ns");
            self.head.forward(bind, feat)
        };
        YolloOutput {
            scores,
            offsets,
            att_layers,
        }
    }
}

impl Yollo {
    /// The Eq. (6) ground-truth attention mask for a batch of target boxes:
    /// uniform mass over the feature-map cells covered by each box.
    pub fn gt_attention_mask(&self, targets: &[BBox]) -> Tensor {
        let (fh, fw) = (self.cfg.feat_h(), self.cfg.feat_w());
        let stride = self.cfg.anchors.stride as f64;
        let m = fh * fw;
        let mut data = vec![0.0; targets.len() * m];
        for (bi, tb) in targets.iter().enumerate() {
            let scaled = tb.scale(1.0 / stride);
            let mut covered = Vec::new();
            for i in 0..fh {
                for j in 0..fw {
                    if scaled.contains_point(j as f64 + 0.5, i as f64 + 0.5) {
                        covered.push(i * fw + j);
                    }
                }
            }
            if covered.is_empty() {
                // tiny box: fall back to the cell holding its centre
                let (cx, cy) = scaled.center();
                let j = (cx.floor().max(0.0) as usize).min(fw - 1);
                let i = (cy.floor().max(0.0) as usize).min(fh - 1);
                covered.push(i * fw + j);
            }
            let w = 1.0 / covered.len() as f64;
            for c in covered {
                data[bi * m + c] = w;
            }
        }
        Tensor::from_vec(data, &[targets.len(), m])
    }

    /// Computes the total loss `L = L_att + L_cls + λ·L_reg` (Eq. 9) for a
    /// batch, returning the differentiable loss and its scalar parts.
    ///
    /// Anchor sampling (§3.3: `N` anchors per image from the positives and
    /// negatives) consumes `rng`.
    pub fn loss<'g>(
        &self,
        bind: &Binder<'g>,
        out: &YolloOutput<'g>,
        targets: &[BBox],
        rng: &mut impl Rng,
    ) -> (Var<'g>, LossParts) {
        let g = bind.graph();
        let b = targets.len();
        let a = self.anchors.len();

        // --- L_att (Eq. 6): cross-entropy between softmax(att_v) and the
        // box-uniform mask, per layer ---
        let gt_mask = self.gt_attention_mask(targets);
        let supervised: Vec<&Var<'g>> = if self.cfg.deep_att_supervision {
            out.att_layers.iter().collect()
        } else {
            out.att_layers.last().into_iter().collect()
        };
        let mut att_loss = g.scalar(0.0);
        for layer_att in &supervised {
            att_loss = att_loss + layer_att.softmax_xent_rows(&gt_mask);
        }
        att_loss = att_loss.mul_scalar(1.0 / supervised.len() as f64);

        // --- anchor labelling & sampling per image ---
        let mut sel_indices = Vec::new(); // flattened b*A + i
        let mut sel_labels = Vec::new();
        let mut pos_indices = Vec::new();
        let mut reg_targets = Vec::new();
        for (bi, tb) in targets.iter().enumerate() {
            let labels = label_anchors(self.anchors.boxes(), tb, &self.cfg.matcher);
            let (pos, neg) = sample_minibatch(&labels, &self.cfg.matcher, rng);
            for &i in &pos {
                sel_indices.push(bi * a + i);
                sel_labels.push(1.0);
                pos_indices.push(bi * a + i);
                let t = tb.encode(&self.anchors.boxes()[i], self.cfg.offset_encoding);
                reg_targets.extend_from_slice(&t);
            }
            for &i in &neg {
                sel_indices.push(bi * a + i);
                sel_labels.push(0.0);
            }
        }

        // --- L_cls (Eq. 7) ---
        let flat_scores = out.scores.reshape(&[b * a]);
        let picked = flat_scores.gather_rows(&sel_indices);
        let label_t = Tensor::from_vec(sel_labels, &[sel_indices.len()]);
        let cls_loss = picked.bce_with_logits(&label_t);

        // --- L_reg (Eq. 8), positives only ---
        let reg_loss = if pos_indices.is_empty() {
            g.scalar(0.0)
        } else {
            let flat_off = out.offsets.reshape(&[b * a, 4]);
            let pos_off = flat_off.gather_rows(&pos_indices);
            let target_t = Tensor::from_vec(reg_targets, &[pos_indices.len(), 4]);
            pos_off.smooth_l1(&target_t, 1.0)
        };

        let total = att_loss + cls_loss + reg_loss.mul_scalar(self.cfg.lambda);
        let parts = LossParts {
            att: att_loss.value().scalar(),
            cls: cls_loss.value().scalar(),
            reg: reg_loss.value().scalar(),
            total: total.value().scalar(),
        };
        (total, parts)
    }

    /// Stacks rendered scenes and encodes queries for a list of samples.
    /// Returns `(images [B,C,H,W], padded query ids, target boxes)`.
    pub fn encode_batch(
        &self,
        ds: &Dataset,
        samples: &[&GroundingSample],
    ) -> (Tensor, Vec<Vec<usize>>, Vec<BBox>) {
        let imgs: Vec<Tensor> = samples.iter().map(|s| ds.scene_of(s).render()).collect();
        let refs: Vec<&Tensor> = imgs.iter().collect();
        let images = Tensor::concat(&refs, 0).reshape(&[
            samples.len(),
            self.cfg.in_channels,
            self.cfg.image_height,
            self.cfg.image_width,
        ]);
        let queries: Vec<Vec<usize>> = samples
            .iter()
            .map(|s| self.vocab.encode_padded(&s.tokens, self.cfg.max_query_len))
            .collect();
        let targets: Vec<BBox> = samples.iter().map(|s| ds.target_bbox(s)).collect();
        (images, queries, targets)
    }

    /// Saves config + vocabulary + weights as JSON.
    ///
    /// # Errors
    /// Returns any I/O or serialisation error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let saved = SavedModel {
            config: self.cfg.clone(),
            vocab: self.vocab.clone(),
            checkpoint: Checkpoint::capture(&self.parameters()),
        };
        let json = serde_json::to_string(&saved).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a model saved by [`Yollo::save`]. The weight seed is irrelevant
    /// (weights are overwritten).
    ///
    /// # Errors
    /// Returns I/O, parse, or missing-parameter errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let mut saved: SavedModel = serde_json::from_str(&json).map_err(std::io::Error::other)?;
        saved.vocab.rebuild_index();
        let mut model = Yollo::new(saved.config, 0);
        model.vocab = saved.vocab;
        saved
            .checkpoint
            .restore(&model.parameters())
            .map_err(std::io::Error::other)?;
        Ok(model)
    }
}

impl Module for Yollo {
    fn parameters(&self) -> ParamList {
        let mut ps = self.encoder.parameters();
        for l in &self.layers {
            ps.extend(l.parameters());
        }
        ps.extend(self.head.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_synthref::{DatasetConfig, DatasetKind, Split};
    use yollo_tensor::Graph;

    fn small_model_and_data() -> (Yollo, Dataset) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let cfg = YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 2,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut m = Yollo::new(cfg, 1);
        m.set_vocab(ds.build_vocab());
        (m, ds)
    }

    #[test]
    fn forward_shapes() {
        let (model, ds) = small_model_and_data();
        let samples: Vec<_> = ds.samples(Split::Train).iter().take(2).collect();
        let (images, queries, _) = model.encode_batch(&ds, &samples);
        let g = Graph::new();
        let b = Binder::new(&g);
        let out = model.forward(&b, g.leaf(images), &queries);
        let a = model.anchors().len();
        assert_eq!(out.scores.dims(), vec![2, a]);
        assert_eq!(out.offsets.dims(), vec![2, a, 4]);
        assert_eq!(out.att_layers.len(), 2);
        assert_eq!(
            out.att_layers[0].dims(),
            vec![2, model.config().num_regions()]
        );
    }

    #[test]
    fn gt_mask_is_a_distribution_over_target_cells() {
        let (model, _) = small_model_and_data();
        let target = BBox::new(16.0, 8.0, 24.0, 16.0);
        let mask = model.gt_attention_mask(&[target]);
        let sum: f64 = mask.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // mass lies inside the scaled box (cells 1..=4 in x, 1..=2 in y)
        let fw = model.config().feat_w();
        for (idx, &v) in mask.as_slice().iter().enumerate() {
            if v > 0.0 {
                let (i, j) = (idx / fw, idx % fw);
                let scaled = target.scale(1.0 / 8.0);
                assert!(scaled.contains_point(j as f64 + 0.5, i as f64 + 0.5));
            }
        }
    }

    #[test]
    fn tiny_box_mask_falls_back_to_center_cell() {
        let (model, _) = small_model_and_data();
        let target = BBox::new(33.0, 17.0, 2.0, 2.0); // smaller than a cell
        let mask = model.gt_attention_mask(&[target]);
        let nz: Vec<usize> = mask
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nz.len(), 1);
        let fw = model.config().feat_w();
        assert_eq!(nz[0], 2 * fw + 4); // centre (34,18)/8 = (4.25, 2.25)
    }

    #[test]
    fn loss_is_finite_and_all_parts_positive() {
        let (model, ds) = small_model_and_data();
        let samples: Vec<_> = ds.samples(Split::Train).iter().take(3).collect();
        let (images, queries, targets) = model.encode_batch(&ds, &samples);
        let g = Graph::new();
        let b = Binder::new(&g);
        let out = model.forward(&b, g.leaf(images), &queries);
        let mut rng = StdRng::seed_from_u64(3);
        let (loss, parts) = model.loss(&b, &out, &targets, &mut rng);
        assert!(loss.value().scalar().is_finite());
        assert!(parts.att > 0.0 && parts.cls > 0.0 && parts.reg >= 0.0);
        assert!((parts.total - (parts.att + parts.cls + parts.reg)).abs() < 1e-9);
    }

    #[test]
    fn backward_reaches_every_parameter() {
        let (model, ds) = small_model_and_data();
        let samples: Vec<_> = ds.samples(Split::Train).iter().take(2).collect();
        let (images, queries, targets) = model.encode_batch(&ds, &samples);
        let g = Graph::new();
        let b = Binder::new(&g);
        let out = model.forward(&b, g.leaf(images), &queries);
        let mut rng = StdRng::seed_from_u64(4);
        let (loss, _) = model.loss(&b, &out, &targets, &mut rng);
        loss.backward();
        b.harvest();
        let silent: Vec<String> = model
            .parameters()
            .iter()
            .filter(|p| p.grad_norm() == 0.0)
            .map(|p| p.name().to_owned())
            .collect();
        assert!(silent.is_empty(), "parameters with zero grad: {silent:?}");
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let (model, ds) = small_model_and_data();
        let dir = std::env::temp_dir().join("yollo_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let loaded = Yollo::load(&path).unwrap();
        let samples: Vec<_> = ds.samples(Split::Val).iter().take(1).collect();
        let (images, queries, _) = model.encode_batch(&ds, &samples);
        let g = Graph::new();
        let b = Binder::new(&g);
        let o1 = model.forward(&b, g.leaf(images.clone()), &queries);
        let g2 = Graph::new();
        let b2 = Binder::new(&g2);
        let o2 = loaded.forward(&b2, g2.leaf(images), &queries);
        assert!(o1.scores.value().max_abs_diff(&o2.scores.value()) < 1e-12);
        std::fs::remove_file(path).ok();
    }
}
