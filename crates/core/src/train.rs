//! End-to-end training (§4.2): Adam, mini-batches, optional word2vec
//! initialisation of the embeddings, and the loss/accuracy curve logging
//! behind Figure 4.

use crate::{LossParts, Yollo};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use yollo_nn::{clip_global_norm, Adam, Binder, Module, Optimizer};
use yollo_synthref::{Dataset, Split};
use yollo_tensor::Graph;
use yollo_text::{Word2Vec, Word2VecConfig};

/// Training hyper-parameters.
///
/// The paper trains 30 epochs with Adam at 5e-5 on 8 GPUs (§4.2); the
/// defaults here are the laptop-scale equivalent (higher LR, fewer, smaller
/// batches) and converge the same way Figure 4 shows: quickly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Total gradient steps.
    pub iterations: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Evaluate on a validation subsample every this many iterations
    /// (0 disables mid-training eval).
    pub eval_every: usize,
    /// Validation samples used for mid-training eval.
    pub eval_samples: usize,
    /// Pre-train word embeddings with skip-gram word2vec on the training
    /// queries before fine-tuning (the paper's LM-1B word2vec stand-in).
    pub word2vec_init: bool,
    /// Backbone pre-training steps on synthetic shape classification before
    /// fine-tuning (the paper's ImageNet pre-training stand-in; 0 = off).
    pub pretrain_backbone_steps: usize,
    /// RNG seed for batching/anchor sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            iterations: 250,
            batch_size: 16,
            lr: 2e-3,
            clip_norm: 5.0,
            eval_every: 50,
            eval_samples: 40,
            word2vec_init: true,
            pretrain_backbone_steps: 40,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A very short run for unit tests.
    pub fn quick() -> Self {
        TrainConfig {
            iterations: 12,
            batch_size: 4,
            eval_every: 6,
            eval_samples: 8,
            word2vec_init: false,
            pretrain_backbone_steps: 0,
            ..TrainConfig::default()
        }
    }
}

/// One logged point of the training curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainPoint {
    /// Gradient-step index (1-based).
    pub iteration: usize,
    /// Loss components at this step.
    pub loss: LossParts,
    /// Validation ACC@0.5 when this step ran an eval.
    pub val_acc: Option<f64>,
}

/// The full training curve (Figure 4's data).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainLog {
    /// Per-iteration records.
    pub points: Vec<TrainPoint>,
}

impl TrainLog {
    /// Mean total loss over the first `n` iterations.
    pub fn early_loss(&self, n: usize) -> f64 {
        let k = n.min(self.points.len()).max(1);
        self.points[..k].iter().map(|p| p.loss.total).sum::<f64>() / k as f64
    }

    /// Mean total loss over the last `n` iterations.
    pub fn late_loss(&self, n: usize) -> f64 {
        let k = n.min(self.points.len()).max(1);
        self.points[self.points.len() - k..]
            .iter()
            .map(|p| p.loss.total)
            .sum::<f64>()
            / k as f64
    }

    /// `(iteration, val_acc)` pairs of the mid-training evaluations.
    pub fn val_curve(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.val_acc.map(|a| (p.iteration, a)))
            .collect()
    }

    /// Writes the curve as CSV (`iteration,att,cls,reg,total,val_acc`).
    ///
    /// # Errors
    /// Returns any I/O error.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::from("iteration,att,cls,reg,total,val_acc\n");
        for p in &self.points {
            let va = p.val_acc.map_or(String::new(), |v| format!("{v:.4}"));
            writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6},{}",
                p.iteration, p.loss.att, p.loss.cls, p.loss.reg, p.loss.total, va
            )
            .expect("writing to string cannot fail");
        }
        std::fs::write(path, out)
    }
}

/// Trains a [`Yollo`] model on a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// The trainer's config.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Pre-trains word2vec on the dataset's training queries and loads the
    /// result into `model`'s embedding table.
    pub fn init_word_embeddings(model: &mut Yollo, ds: &Dataset, seed: u64) {
        let vocab = model.vocab().clone();
        let corpus: Vec<Vec<usize>> = ds
            .samples(Split::Train)
            .iter()
            .map(|s| s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let w2v = Word2Vec::train(
            &corpus,
            vocab.len(),
            Word2VecConfig {
                dim: model.config().d_rel,
                epochs: 3,
                ..Word2VecConfig::default()
            },
            &mut rng,
        );
        model
            .encoder_mut()
            .load_word_embeddings(w2v.input_embeddings());
    }

    /// Runs training and returns the curve. The model must already carry
    /// the dataset's vocabulary.
    ///
    /// # Panics
    /// Panics if the training split is empty or the vocabulary is missing.
    pub fn train(&self, model: &mut Yollo, ds: &Dataset) -> TrainLog {
        assert!(
            !ds.samples(Split::Train).is_empty(),
            "empty training split"
        );
        assert!(
            model.vocab().len() >= 2,
            "model has no vocabulary; call set_vocab/for_dataset first"
        );
        if self.cfg.word2vec_init {
            Trainer::init_word_embeddings(model, ds, self.cfg.seed ^ 0x5EED_1234);
        }
        if self.cfg.pretrain_backbone_steps > 0 {
            yollo_backbone::pretrain_shapes(
                model.encoder().backbone(),
                self.cfg.pretrain_backbone_steps,
                8,
                self.cfg.seed ^ 0x1AA6E,
            );
        }
        let params = model.parameters();
        let mut opt = Adam::new(params.clone(), self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut log = TrainLog::default();

        // fixed validation subsample for comparable mid-training evals
        let mut val_pool: Vec<_> = ds.samples(Split::Val).to_vec();
        val_pool.shuffle(&mut rng);
        val_pool.truncate(self.cfg.eval_samples.max(1));

        for it in 1..=self.cfg.iterations {
            let batch = ds.sample_batch(self.cfg.batch_size, &mut rng);
            let (images, queries, targets) = model.encode_batch(ds, &batch);
            let g = Graph::new();
            let bind = Binder::new(&g);
            let out = model.forward(&bind, g.leaf(images), &queries);
            let (loss, parts) = model.loss(&bind, &out, &targets, &mut rng);
            opt.zero_grad();
            loss.backward();
            bind.harvest();
            clip_global_norm(&params, self.cfg.clip_norm);
            opt.step();

            let val_acc = if self.cfg.eval_every > 0 && it % self.cfg.eval_every == 0 {
                Some(model.evaluate_samples(ds, &val_pool).acc_at(0.5))
            } else {
                None
            };
            log.points.push(TrainPoint {
                iteration: it,
                loss: parts,
                val_acc,
            });
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YolloConfig;
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn tiny_setup() -> (Yollo, Dataset) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let cfg = YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 1,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut m = Yollo::new(cfg, 1);
        m.set_vocab(ds.build_vocab());
        (m, ds)
    }

    #[test]
    fn short_training_reduces_loss() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig {
            iterations: 30,
            batch_size: 4,
            eval_every: 0,
            word2vec_init: false,
            ..TrainConfig::default()
        })
        .train(&mut model, &ds);
        assert_eq!(log.points.len(), 30);
        assert!(
            log.late_loss(5) < log.early_loss(5),
            "loss did not drop: {} -> {}",
            log.early_loss(5),
            log.late_loss(5)
        );
    }

    #[test]
    fn eval_points_are_recorded() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
        let curve = log.val_curve();
        assert_eq!(curve.len(), 2); // 12 iters, eval every 6
        assert!(curve.iter().all(|(_, a)| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn word2vec_init_changes_embeddings() {
        let (mut model, ds) = tiny_setup();
        let before = model.parameters()[0].value(); // unrelated param baseline
        let emb_before = model
            .parameters()
            .iter()
            .find(|p| p.name() == "encoder.word.table")
            .unwrap()
            .value();
        Trainer::init_word_embeddings(&mut model, &ds, 9);
        let emb_after = model
            .parameters()
            .iter()
            .find(|p| p.name() == "encoder.word.table")
            .unwrap()
            .value();
        assert!(emb_before.max_abs_diff(&emb_after) > 1e-9);
        let after = model.parameters()[0].value();
        assert_eq!(before, after, "non-embedding weights must be untouched");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
        let dir = std::env::temp_dir().join("yollo_train_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("curve.csv");
        log.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("iteration,att,cls,reg,total,val_acc"));
        assert_eq!(text.lines().count(), 13);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let run = || {
            let (mut model, ds) = tiny_setup();
            let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
            log.points.last().unwrap().loss.total
        };
        assert_eq!(run(), run());
    }
}
