//! End-to-end training (§4.2): Adam, mini-batches, optional word2vec
//! initialisation of the embeddings, and the loss/accuracy curve logging
//! behind Figure 4 — wrapped in a fault-tolerance layer.
//!
//! # Fault tolerance
//!
//! Long runs die and diverge; the trainer is built to survive both.
//!
//! - **Full training-state snapshots.** [`TrainState`] captures weights,
//!   Adam moments and step count, the serialisable [`TrainRng`], the
//!   iteration index, the current learning rate and the [`TrainLog`].
//!   [`Trainer::resume`] therefore continues a run *bit-for-bit*
//!   identically to one that was never interrupted.
//! - **Crash-safe writes.** Snapshots go through
//!   [`yollo_nn::CheckpointStore`]: CRC-checked atomic write/rename with a
//!   retained-last-K rotation, and load-time fallback to the newest valid
//!   file when the latest is truncated or corrupt.
//! - **Non-finite guards.** After every backward pass the loss and all
//!   gradients are scanned; a bad step is skipped (weights and optimiser
//!   state untouched, [`StepOutcome::Skipped`] logged) and after
//!   [`RecoveryPolicy::max_bad_steps`] consecutive bad steps the trainer
//!   rolls back to the last checkpoint with a learning-rate reduction.
//! - **Fault injection.** A [`crate::FaultPlan`] deterministically poisons
//!   chosen steps or "crashes" the run, which is how all of the above is
//!   tested (see `tests/fault_tolerance.rs` and `exp_fault_tolerance`).

use crate::train_parallel::{ShardPool, ShardTask};
use crate::{FaultPlan, LossParts, TrainRng, Yollo};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use yollo_nn::{
    clip_global_norm, Adam, Binder, Checkpoint, CheckpointStore, Module, OptimState, Optimizer,
    Parameter,
};
use yollo_synthref::{Dataset, Split};
use yollo_tensor::{Graph, Tensor};
use yollo_text::{Word2Vec, Word2VecConfig};

/// What to do when training steps go non-finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Consecutive skipped (non-finite) steps that trigger a rollback to
    /// the last checkpoint.
    pub max_bad_steps: usize,
    /// Multiplier applied to the learning rate at each rollback.
    pub lr_backoff: f64,
    /// Rollbacks allowed per run before the trainer gives up and returns
    /// early (guards against a deterministic divergence looping forever).
    pub max_recoveries: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_bad_steps: 3,
            lr_backoff: 0.5,
            max_recoveries: 8,
        }
    }
}

/// Training hyper-parameters.
///
/// The paper trains 30 epochs with Adam at 5e-5 on 8 GPUs (§4.2); the
/// defaults here are the laptop-scale equivalent (higher LR, fewer, smaller
/// batches) and converge the same way Figure 4 shows: quickly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Total gradient steps.
    pub iterations: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Evaluate on a validation subsample every this many iterations
    /// (0 disables mid-training eval).
    pub eval_every: usize,
    /// Validation samples used for mid-training eval.
    pub eval_samples: usize,
    /// Pre-train word embeddings with skip-gram word2vec on the training
    /// queries before fine-tuning (the paper's LM-1B word2vec stand-in).
    pub word2vec_init: bool,
    /// Backbone pre-training steps on synthetic shape classification before
    /// fine-tuning (the paper's ImageNet pre-training stand-in; 0 = off).
    pub pretrain_backbone_steps: usize,
    /// RNG seed for batching/anchor sampling.
    pub seed: u64,
    /// Data-parallel shards per training step. `1` (the default) is the
    /// serial trainer; `n > 1` splits every batch into `n` contiguous
    /// shards whose forward/backward run on replica worker threads (see
    /// the crate docs on determinism: results depend on `num_shards` but
    /// never on how many threads service the shards).
    #[serde(default = "default_num_shards")]
    pub num_shards: usize,
    /// Snapshot the full training state every this many iterations when a
    /// checkpoint directory is in use (0 = final snapshot only).
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Checkpoints retained by the rotation policy.
    #[serde(default = "default_keep_last")]
    pub keep_last: usize,
    /// Non-finite-step recovery knobs.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

fn default_keep_last() -> usize {
    3
}

fn default_num_shards() -> usize {
    1
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            iterations: 250,
            batch_size: 16,
            lr: 2e-3,
            clip_norm: 5.0,
            eval_every: 50,
            eval_samples: 40,
            word2vec_init: true,
            pretrain_backbone_steps: 40,
            seed: 0,
            num_shards: default_num_shards(),
            checkpoint_every: 50,
            keep_last: default_keep_last(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl TrainConfig {
    /// A very short run for unit tests.
    pub fn quick() -> Self {
        TrainConfig {
            iterations: 12,
            batch_size: 4,
            eval_every: 6,
            eval_samples: 8,
            word2vec_init: false,
            pretrain_backbone_steps: 0,
            checkpoint_every: 4,
            ..TrainConfig::default()
        }
    }
}

/// How one gradient step ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The optimiser update was applied.
    #[default]
    Applied,
    /// Loss or gradients were non-finite: the update was skipped and
    /// weights/optimiser state left untouched.
    Skipped,
}

/// One logged point of the training curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainPoint {
    /// Gradient-step index (1-based).
    pub iteration: usize,
    /// Loss components at this step (zeroed for skipped steps, whose raw
    /// values were non-finite).
    pub loss: LossParts,
    /// Validation ACC@0.5 when this step ran an eval.
    pub val_acc: Option<f64>,
    /// Whether the step's update was applied or skipped.
    #[serde(default)]
    pub outcome: StepOutcome,
}

/// One rollback performed by the recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Iteration at which the bad-step streak tripped the policy.
    pub at_iteration: usize,
    /// Iteration of the checkpoint that was restored (equals
    /// `at_iteration` when no checkpoint was available and only the
    /// learning rate was reduced in place).
    pub restored_iteration: usize,
    /// Learning rate after the backoff.
    pub lr: f64,
}

/// The full training curve (Figure 4's data).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainLog {
    /// Per-iteration records.
    pub points: Vec<TrainPoint>,
    /// Rollbacks performed by the recovery policy. Points past a restored
    /// checkpoint are rewound on rollback; these events are what remains
    /// of the discarded stretch.
    #[serde(default)]
    pub recoveries: Vec<RecoveryEvent>,
}

impl TrainLog {
    /// Loss totals of applied (non-skipped) steps, in order.
    fn applied_totals(&self) -> impl Iterator<Item = f64> + '_ {
        self.points
            .iter()
            .filter(|p| p.outcome == StepOutcome::Applied)
            .map(|p| p.loss.total)
    }

    /// Mean total loss over the first `n` applied iterations, or `None`
    /// when there are no applied points (an empty mean would read as
    /// "converged to 0.0").
    pub fn early_loss(&self, n: usize) -> Option<f64> {
        let totals: Vec<f64> = self.applied_totals().take(n).collect();
        if totals.is_empty() {
            return None;
        }
        Some(totals.iter().sum::<f64>() / totals.len() as f64)
    }

    /// Mean total loss over the last `n` applied iterations, or `None`
    /// when there are no applied points.
    pub fn late_loss(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return None;
        }
        let totals: Vec<f64> = self.applied_totals().collect();
        if totals.is_empty() {
            return None;
        }
        let k = n.min(totals.len());
        Some(totals[totals.len() - k..].iter().sum::<f64>() / k as f64)
    }

    /// `(iteration, val_acc)` pairs of the mid-training evaluations.
    pub fn val_curve(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.val_acc.map(|a| (p.iteration, a)))
            .collect()
    }

    /// Writes the curve as CSV
    /// (`iteration,att,cls,reg,total,val_acc,outcome`).
    ///
    /// # Errors
    /// Returns any I/O error.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::from("iteration,att,cls,reg,total,val_acc,outcome\n");
        for p in &self.points {
            let va = p.val_acc.map_or(String::new(), |v| format!("{v:.4}"));
            let outcome = match p.outcome {
                StepOutcome::Applied => "applied",
                StepOutcome::Skipped => "skipped",
            };
            writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6},{},{}",
                p.iteration, p.loss.att, p.loss.cls, p.loss.reg, p.loss.total, va, outcome
            )
            .expect("writing to string cannot fail");
        }
        std::fs::write(path, out)
    }

    /// Renders the log as JSON Lines: one `{"kind":"point",...}` object per
    /// training point followed by one `{"kind":"recovery",...}` object per
    /// rollback. Machine-readable counterpart of [`TrainLog::write_csv`],
    /// consumed by the analysis notebooks and the `exp_fig4_curves` bench.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            let data = serde_json::to_string(p).expect("TrainPoint serialises");
            out.push_str(&format!("{{\"kind\":\"point\",\"data\":{data}}}\n"));
        }
        for r in &self.recoveries {
            let data = serde_json::to_string(r).expect("RecoveryEvent serialises");
            out.push_str(&format!("{{\"kind\":\"recovery\",\"data\":{data}}}\n"));
        }
        out
    }

    /// Writes [`TrainLog::to_jsonl`] to `path`.
    ///
    /// # Errors
    /// Returns any I/O error.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

/// A complete, serialisable snapshot of a training run: everything needed
/// to continue it bit-for-bit identically to an uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainState {
    /// Snapshot format version.
    pub version: u32,
    /// The config the run was started with (resume validates against it).
    pub config: TrainConfig,
    /// Last completed iteration.
    pub iteration: usize,
    /// Learning rate in effect (differs from `config.lr` after rollbacks).
    pub lr: f64,
    /// Training RNG state at the end of `iteration`.
    pub rng: TrainRng,
    /// All model weights.
    pub params: Checkpoint,
    /// Optimiser moments and step count.
    pub optimizer: OptimState,
    /// The training curve so far.
    pub log: TrainLog,
}

/// Current [`TrainState`] format version.
pub const TRAIN_STATE_VERSION: u32 = 1;

/// Result of a checkpointed training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The training curve (restored + new points when resumed).
    pub log: TrainLog,
    /// `Some(iter)` when the run stopped early — a [`FaultPlan`] crash at
    /// `iter`, or the recovery policy exhausting
    /// [`RecoveryPolicy::max_recoveries`].
    pub interrupted_at: Option<usize>,
    /// Iteration of the checkpoint this run resumed from, if any.
    pub resumed_from: Option<usize>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Trains a [`Yollo`] model on a [`Dataset`].
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
    plan: FaultPlan,
    worker_threads: Option<usize>,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer {
            cfg,
            plan: FaultPlan::new(),
            worker_threads: None,
        }
    }

    /// Attaches a fault-injection plan (testing/benchmark harness).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Pins the number of shard-worker threads the data-parallel trainer
    /// may use (default: `min(num_shards, ambient pool width)`). This is a
    /// wall-clock knob only — the determinism contract guarantees the
    /// trained weights are bit-identical for every value of it. Ignored
    /// when `num_shards <= 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "worker thread count must be positive");
        self.worker_threads = Some(n);
        self
    }

    /// The trainer's config.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Pre-trains word2vec on the dataset's training queries and loads the
    /// result into `model`'s embedding table.
    pub fn init_word_embeddings(model: &mut Yollo, ds: &Dataset, seed: u64) {
        let vocab = model.vocab().clone();
        let corpus: Vec<Vec<usize>> = ds
            .samples(Split::Train)
            .iter()
            .map(|s| s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect())
            .collect();
        let mut rng = TrainRng::seed_from_u64(seed);
        let w2v = Word2Vec::train(
            &corpus,
            vocab.len(),
            Word2VecConfig {
                dim: model.config().d_rel,
                epochs: 3,
                ..Word2VecConfig::default()
            },
            &mut rng,
        );
        model
            .encoder_mut()
            .load_word_embeddings(w2v.input_embeddings());
    }

    /// Runs training and returns the curve. The model must already carry
    /// the dataset's vocabulary. No checkpoints are written; for a
    /// crash-safe run use [`Trainer::train_checkpointed`].
    ///
    /// # Panics
    /// Panics if the training split is empty or the vocabulary is missing.
    pub fn train(&self, model: &mut Yollo, ds: &Dataset) -> TrainLog {
        self.run(model, ds, None, false)
            .expect("training without a checkpoint store performs no I/O")
            .log
    }

    /// Runs training with durable full-state snapshots in `dir` (every
    /// [`TrainConfig::checkpoint_every`] iterations plus a final one,
    /// rotated to the newest [`TrainConfig::keep_last`]).
    ///
    /// # Errors
    /// Returns any checkpoint I/O error.
    ///
    /// # Panics
    /// Panics if the training split is empty or the vocabulary is missing.
    pub fn train_checkpointed(
        &self,
        model: &mut Yollo,
        ds: &Dataset,
        dir: impl AsRef<Path>,
    ) -> io::Result<TrainOutcome> {
        let store = CheckpointStore::open(dir.as_ref(), self.cfg.keep_last)?;
        self.run(model, ds, Some(&store), false)
    }

    /// Resumes a run from the newest *valid* checkpoint in `dir` (corrupt
    /// or truncated files are skipped) and trains up to
    /// `config.iterations`. The continuation is bit-for-bit identical to a
    /// run that was never interrupted. With no valid checkpoint the run
    /// starts from scratch.
    ///
    /// # Errors
    /// Returns checkpoint I/O errors, or [`io::ErrorKind::InvalidData`]
    /// when the checkpoint was written under an incompatible config.
    ///
    /// # Panics
    /// Panics if the training split is empty or the vocabulary is missing.
    pub fn resume(
        &self,
        model: &mut Yollo,
        ds: &Dataset,
        dir: impl AsRef<Path>,
    ) -> io::Result<TrainOutcome> {
        let store = CheckpointStore::open(dir.as_ref(), self.cfg.keep_last)?;
        self.run(model, ds, Some(&store), true)
    }

    /// Fields of two configs that must agree for a resumed run to continue
    /// the same trajectory.
    fn check_compatible(ours: &TrainConfig, saved: &TrainConfig) -> Result<(), String> {
        let mismatch = |what: &str| Err(format!("checkpoint config mismatch: {what}"));
        if ours.seed != saved.seed {
            return mismatch("seed");
        }
        if ours.batch_size != saved.batch_size {
            return mismatch("batch_size");
        }
        if ours.lr != saved.lr {
            return mismatch("lr");
        }
        if ours.clip_norm != saved.clip_norm {
            return mismatch("clip_norm");
        }
        if ours.num_shards != saved.num_shards {
            // sharding changes the step's floating-point trajectory, so a
            // resume under a different shard count would silently diverge
            return mismatch("num_shards");
        }
        Ok(())
    }

    /// Newest checkpoint in `store` that passes both CRC validation and
    /// JSON parsing (older files are tried in turn).
    fn load_newest_state(store: &CheckpointStore) -> io::Result<Option<(usize, TrainState)>> {
        for (iter, path) in store.entries()?.into_iter().rev() {
            let Ok(payload) = yollo_nn::read_validated(&path) else {
                continue; // truncated/corrupt: fall back to an older one
            };
            let Ok(state) = serde_json::from_slice::<TrainState>(&payload) else {
                continue;
            };
            return Ok(Some((iter, state)));
        }
        Ok(None)
    }

    /// Restores a snapshot into the live training loop.
    fn apply_state(
        state: &TrainState,
        params: &[Parameter],
        opt: &mut Adam,
        rng: &mut TrainRng,
        log: &mut TrainLog,
    ) -> io::Result<()> {
        state.params.restore(params).map_err(invalid)?;
        opt.import_state(&state.optimizer).map_err(invalid)?;
        *rng = state.rng.clone();
        *log = state.log.clone();
        Ok(())
    }

    /// The training loop shared by [`Trainer::train`],
    /// [`Trainer::train_checkpointed`] and [`Trainer::resume`].
    fn run(
        &self,
        model: &mut Yollo,
        ds: &Dataset,
        store: Option<&CheckpointStore>,
        resume: bool,
    ) -> io::Result<TrainOutcome> {
        let cfg = self.cfg;
        assert!(!ds.samples(Split::Train).is_empty(), "empty training split");
        assert!(
            model.vocab().len() >= 2,
            "model has no vocabulary; call set_vocab/for_dataset first"
        );
        let params = model.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let mut rng = TrainRng::seed_from_u64(cfg.seed);
        let mut log = TrainLog::default();
        let mut cur_lr = cfg.lr;
        let mut start_iter = 1usize;
        let mut resumed_from = None;

        if resume {
            let store = store.expect("resume requires a checkpoint store");
            if let Some((iter, state)) = Trainer::load_newest_state(store)? {
                Trainer::check_compatible(&cfg, &state.config).map_err(invalid)?;
                Trainer::apply_state(&state, &params, &mut opt, &mut rng, &mut log)?;
                cur_lr = state.lr;
                opt.set_learning_rate(cur_lr);
                start_iter = iter + 1;
                resumed_from = Some(iter);
            }
        }
        if resumed_from.is_none() {
            if cfg.word2vec_init {
                Trainer::init_word_embeddings(model, ds, cfg.seed ^ 0x5EED_1234);
            }
            if cfg.pretrain_backbone_steps > 0 {
                yollo_backbone::pretrain_shapes(
                    model.encoder().backbone(),
                    cfg.pretrain_backbone_steps,
                    8,
                    cfg.seed ^ 0x1AA6E,
                );
            }
        }

        // data-parallel shard pool: one long-lived replica thread per
        // worker. The serial path (num_shards <= 1) never touches it and
        // keeps its exact pre-existing step trajectory.
        let pool = if cfg.num_shards > 1 {
            let workers = self
                .worker_threads
                .unwrap_or_else(yollo_tensor::parallel::num_threads)
                .clamp(1, cfg.num_shards);
            Some(ShardPool::spawn(model.config(), model.vocab(), workers))
        } else {
            None
        };

        // fixed validation subsample for comparable mid-training evals;
        // drawn from a dedicated seed stream so it is identical on resume
        // without consuming the training rng
        let mut val_rng = TrainRng::seed_from_u64(cfg.seed ^ 0x7A11_9001);
        let mut val_pool: Vec<_> = ds.samples(Split::Val).to_vec();
        val_pool.shuffle(&mut val_rng);
        val_pool.truncate(cfg.eval_samples.max(1));

        // optional periodic metrics export: YOLLO_METRICS_PATH names a JSONL
        // file that receives a registry snapshot every 16 iterations
        let mut snapshotter = std::env::var("YOLLO_METRICS_PATH")
            .ok()
            .and_then(|p| yollo_obs::JsonlFileSink::create(p).ok())
            .map(|sink| yollo_obs::PeriodicSnapshotter::new(16, sink));

        let mut plan = self.plan.clone();
        let mut bad_streak = 0usize;
        let mut recoveries_this_run = 0usize;
        let mut it = start_iter;
        while it <= cfg.iterations {
            if plan.take_crash(it) {
                return Ok(TrainOutcome {
                    log,
                    interrupted_at: Some(it),
                    resumed_from,
                });
            }
            let _step_span = yollo_obs::span!("train.step");
            let _step_lat = yollo_obs::time_hist!("train.step_ns");
            let batch = ds.sample_batch(cfg.batch_size, &mut rng);
            opt.zero_grad();
            let mut parts = if let Some(pool) = &pool {
                // fork every shard's rng off the training stream up front:
                // consumption per step is fixed by the config alone, which
                // is what lets a resumed run replay the same forks
                let shards = cfg.num_shards.min(batch.len()).max(1);
                let forks: Vec<TrainRng> = (0..shards).map(|_| rng.fork()).collect();
                let (base, rem) = (batch.len() / shards, batch.len() % shards);
                let mut tasks = Vec::with_capacity(shards);
                let mut start = 0usize;
                for (i, fork) in forks.into_iter().enumerate() {
                    let len = base + usize::from(i < rem);
                    let shard = &batch[start..start + len];
                    start += len;
                    let (images, queries, targets) = model.encode_batch(ds, shard);
                    tasks.push(ShardTask {
                        index: i,
                        images,
                        queries,
                        targets,
                        rng: fork,
                        weight: len as f64 / batch.len() as f64,
                    });
                }
                let weights: Vec<Tensor> = params.iter().map(Parameter::value).collect();
                let _s = yollo_obs::span!("train.backward");
                pool.step(&params, weights, tasks)
            } else {
                let (images, queries, targets) = model.encode_batch(ds, &batch);
                let g = Graph::new();
                let bind = Binder::new(&g);
                let out = model.forward(&bind, g.leaf(images), &queries);
                let (loss, parts) = {
                    let _s = yollo_obs::span!("train.loss");
                    model.loss(&bind, &out, &targets, &mut rng)
                };
                {
                    let _s = yollo_obs::span!("train.backward");
                    loss.backward();
                    bind.harvest();
                }
                parts
            };
            if plan.take_nan(it) {
                // poison the step the way a divergence would: non-finite
                // loss and at least one non-finite gradient
                parts.total = f64::NAN;
                let dims = params[0].dims();
                params[0].accumulate_grad(&Tensor::full(&dims, f64::NAN));
            }

            // non-finite guard: loss total and every gradient
            let healthy = parts.total.is_finite() && params.iter().all(Parameter::grad_is_finite);
            if healthy {
                let gnorm = clip_global_norm(&params, cfg.clip_norm);
                yollo_obs::gauge!("train.grad_norm").set(gnorm);
                yollo_obs::gauge!("train.loss.total").set(parts.total);
                yollo_obs::gauge!("train.loss.att").set(parts.att);
                yollo_obs::gauge!("train.loss.cls").set(parts.cls);
                yollo_obs::gauge!("train.loss.reg").set(parts.reg);
                opt.step();
                yollo_obs::counter!("train.steps.applied").incr();
                bad_streak = 0;
            } else {
                yollo_obs::counter!("train.steps.skipped").incr();
                bad_streak += 1;
            }

            // mid-training eval tolerates an empty Val split by skipping
            let val_acc = if cfg.eval_every > 0
                && it.is_multiple_of(cfg.eval_every)
                && !val_pool.is_empty()
            {
                let _s = yollo_obs::span!("train.eval");
                Some(model.evaluate_samples(ds, &val_pool).acc_at(0.5))
            } else {
                None
            };
            log.points.push(TrainPoint {
                iteration: it,
                // non-finite parts cannot survive into a JSON snapshot:
                // skipped steps record zeroed parts plus the outcome marker
                loss: if healthy { parts } else { LossParts::default() },
                val_acc,
                outcome: if healthy {
                    StepOutcome::Applied
                } else {
                    StepOutcome::Skipped
                },
            });

            if !healthy && bad_streak >= cfg.recovery.max_bad_steps.max(1) {
                if recoveries_this_run >= cfg.recovery.max_recoveries {
                    return Ok(TrainOutcome {
                        log,
                        interrupted_at: Some(it),
                        resumed_from,
                    });
                }
                recoveries_this_run += 1;
                yollo_obs::counter!("train.recoveries").incr();
                bad_streak = 0;
                let restored = match store {
                    Some(s) => Trainer::load_newest_state(s)?,
                    None => None,
                };
                match restored {
                    Some((ck_iter, state)) => {
                        // roll back weights, moments, rng and log, and retry
                        // from the checkpoint with a reduced learning rate
                        Trainer::apply_state(&state, &params, &mut opt, &mut rng, &mut log)?;
                        cur_lr = state.lr * cfg.recovery.lr_backoff;
                        opt.set_learning_rate(cur_lr);
                        log.recoveries.push(RecoveryEvent {
                            at_iteration: it,
                            restored_iteration: ck_iter,
                            lr: cur_lr,
                        });
                        it = ck_iter + 1;
                        continue;
                    }
                    None => {
                        // nothing to roll back to: reduce the LR in place
                        cur_lr *= cfg.recovery.lr_backoff;
                        opt.set_learning_rate(cur_lr);
                        log.recoveries.push(RecoveryEvent {
                            at_iteration: it,
                            restored_iteration: it,
                            lr: cur_lr,
                        });
                    }
                }
            }

            if let Some(snap) = snapshotter.as_mut() {
                // metrics export is best-effort; never fail training over it
                let _ = snap.tick();
            }

            if let Some(store) = store {
                let due = cfg.checkpoint_every > 0 && it.is_multiple_of(cfg.checkpoint_every);
                if due || it == cfg.iterations {
                    let _s = yollo_obs::span!("train.checkpoint");
                    let state = TrainState {
                        version: TRAIN_STATE_VERSION,
                        config: cfg,
                        iteration: it,
                        lr: cur_lr,
                        rng: rng.clone(),
                        params: Checkpoint::capture(&params),
                        optimizer: opt.export_state(),
                        log: log.clone(),
                    };
                    let payload = serde_json::to_vec(&state).map_err(io::Error::other)?;
                    store.save(it, &payload)?;
                }
            }
            it += 1;
        }
        Ok(TrainOutcome {
            log,
            interrupted_at: None,
            resumed_from,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YolloConfig;
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn tiny_setup() -> (Yollo, Dataset) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let cfg = YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 1,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut m = Yollo::new(cfg, 1);
        m.set_vocab(ds.build_vocab());
        (m, ds)
    }

    #[test]
    fn short_training_reduces_loss() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig {
            iterations: 30,
            batch_size: 4,
            eval_every: 0,
            word2vec_init: false,
            pretrain_backbone_steps: 0,
            ..TrainConfig::default()
        })
        .train(&mut model, &ds);
        assert_eq!(log.points.len(), 30);
        let (early, late) = (log.early_loss(5).unwrap(), log.late_loss(5).unwrap());
        assert!(late < early, "loss did not drop: {early} -> {late}");
    }

    #[test]
    fn eval_points_are_recorded() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
        let curve = log.val_curve();
        assert_eq!(curve.len(), 2); // 12 iters, eval every 6
        assert!(curve.iter().all(|(_, a)| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn empty_log_losses_are_none_not_zero() {
        let log = TrainLog::default();
        assert_eq!(log.early_loss(5), None);
        assert_eq!(log.late_loss(5), None);
        // a log holding only skipped points has no applied loss either
        let skipped = TrainLog {
            points: vec![TrainPoint {
                iteration: 1,
                loss: LossParts::default(),
                val_acc: None,
                outcome: StepOutcome::Skipped,
            }],
            recoveries: vec![],
        };
        assert_eq!(skipped.early_loss(5), None);
        assert_eq!(skipped.late_loss(5), None);
        assert_eq!(skipped.late_loss(0), None);
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_line() {
        let log = TrainLog {
            points: vec![
                TrainPoint {
                    iteration: 1,
                    loss: LossParts {
                        att: 0.5,
                        cls: 0.25,
                        reg: 0.25,
                        total: 1.0,
                    },
                    val_acc: Some(0.125),
                    outcome: StepOutcome::Applied,
                },
                TrainPoint {
                    iteration: 2,
                    loss: LossParts::default(),
                    val_acc: None,
                    outcome: StepOutcome::Skipped,
                },
            ],
            recoveries: vec![RecoveryEvent {
                at_iteration: 2,
                restored_iteration: 1,
                lr: 5e-4,
            }],
        };
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["kind"].is_string());
            assert!(v["data"].is_object());
        }
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["kind"], "point");
        assert_eq!(first["data"]["iteration"], 1);
        let last: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(last["kind"], "recovery");
        assert_eq!(last["data"]["restored_iteration"], 1);
    }

    #[test]
    fn empty_val_split_is_tolerated() {
        let ds = Dataset::generate(DatasetConfig {
            val_images: 0,
            ..DatasetConfig::tiny(DatasetKind::SynthRef, 0)
        });
        assert!(
            ds.samples(Split::Val).is_empty(),
            "setup: val must be empty"
        );
        let cfg = YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 1,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut model = Yollo::new(cfg, 1);
        model.set_vocab(ds.build_vocab());
        // eval_every fires, but with no Val samples evals are skipped
        let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
        assert_eq!(log.points.len(), 12);
        assert!(log.val_curve().is_empty());
    }

    #[test]
    fn word2vec_init_changes_embeddings() {
        let (mut model, ds) = tiny_setup();
        let before = model.parameters()[0].value(); // unrelated param baseline
        let emb_before = model
            .parameters()
            .iter()
            .find(|p| p.name() == "encoder.word.table")
            .unwrap()
            .value();
        Trainer::init_word_embeddings(&mut model, &ds, 9);
        let emb_after = model
            .parameters()
            .iter()
            .find(|p| p.name() == "encoder.word.table")
            .unwrap()
            .value();
        assert!(emb_before.max_abs_diff(&emb_after) > 1e-9);
        let after = model.parameters()[0].value();
        assert_eq!(before, after, "non-embedding weights must be untouched");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
        let dir = std::env::temp_dir().join("yollo_train_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("curve.csv");
        log.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("iteration,att,cls,reg,total,val_acc,outcome"));
        assert_eq!(text.lines().count(), 13);
        assert!(text.lines().nth(1).unwrap().ends_with(",applied"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let run = || {
            let (mut model, ds) = tiny_setup();
            let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
            log.points.last().unwrap().loss.total
        };
        assert_eq!(run(), run());
    }
}
