//! Data-parallel gradient computation: one model replica per worker thread.
//!
//! The autodiff tape ([`yollo_tensor::Graph`]) is single-threaded by
//! design, so training parallelises *across* tapes: each step the batch is
//! split into `num_shards` contiguous shards, every shard runs its own
//! forward + backward on a private tape inside a long-lived worker thread,
//! and the per-parameter shard gradients are reduced on the main thread.
//!
//! # Determinism contract
//!
//! For a fixed [`crate::TrainConfig`] (including `num_shards`), the
//! resulting weights are **bit-identical regardless of how many worker
//! threads service the shards**:
//!
//! - every worker pins intra-op parallelism to one thread
//!   ([`yollo_tensor::parallel::with_threads`]), so a shard's floating-point
//!   work never depends on the machine's core count;
//! - each shard draws its anchor-sampling RNG from a per-shard seed the
//!   main thread dealt out of the training RNG stream (fixed consumption:
//!   exactly `num_shards` draws per step, so checkpoint resume replays the
//!   same seeds);
//! - the reduction folds shard gradients into the parameters in ascending
//!   shard order, one shard at a time, on the main thread.
//!
//! Shard-to-worker assignment is static (`shard i → worker i mod W`), but
//! because each shard's computation is self-contained and the reduction
//! order is fixed, assignment affects wall-clock only, never bits. The
//! serial trainer (`num_shards <= 1`) does not go through this module at
//! all and keeps its exact pre-existing trajectory.
//!
//! Replicas are built once per run from the model's config + vocabulary
//! (both plain `Send` data — [`yollo_nn::Parameter`] itself is `Rc`-based
//! and never crosses a thread); weights are broadcast to workers each step
//! as an `Arc<Vec<Tensor>>` snapshot.

use crate::{LossParts, TrainRng, Yollo, YolloConfig};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use yollo_detect::BBox;
use yollo_nn::{Binder, Module, Parameter};
use yollo_tensor::{parallel, Graph, TapeArena, Tensor};
use yollo_text::Vocab;

/// One shard of a training batch, ready for a worker.
pub(crate) struct ShardTask {
    /// Shard index in `0..num_shards`; fixes the reduction order.
    pub index: usize,
    /// Rendered scenes `[n, C, H, W]` for this shard's samples.
    pub images: Tensor,
    /// Padded query token ids, one row per sample.
    pub queries: Vec<Vec<usize>>,
    /// Ground-truth boxes, one per sample.
    pub targets: Vec<BBox>,
    /// This shard's private anchor-sampling RNG, forked off the training
    /// stream by the main thread.
    pub rng: TrainRng,
    /// This shard's fraction of the batch (`n / batch_size`); scales its
    /// gradients and loss parts in the reduction.
    pub weight: f64,
}

/// What a worker sends back per shard.
struct ShardResult {
    grads: Vec<Tensor>,
    parts: LossParts,
    weight: f64,
}

enum WorkerMsg {
    Step {
        weights: Arc<Vec<Tensor>>,
        tasks: Vec<ShardTask>,
    },
    Shutdown,
}

/// A persistent pool of model-replica worker threads for one training run.
pub(crate) struct ShardPool {
    txs: Vec<Sender<WorkerMsg>>,
    rx: Receiver<(usize, ShardResult)>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl ShardPool {
    /// Spawns `workers` replica threads (each builds its own [`Yollo`] from
    /// `cfg` + `vocab`; the random init is overwritten by the first
    /// broadcast).
    ///
    /// # Panics
    /// Panics if `workers == 0` or a thread fails to spawn.
    pub fn spawn(cfg: &YolloConfig, vocab: &Vocab, workers: usize) -> ShardPool {
        assert!(workers >= 1, "shard pool needs at least one worker");
        let (res_tx, res_rx) = channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<WorkerMsg>();
            let (cfg, vocab, res) = (cfg.clone(), vocab.clone(), res_tx.clone());
            let handle = std::thread::Builder::new()
                .name(format!("yollo-shard-{w}"))
                .spawn(move || worker_loop(cfg, vocab, rx, res))
                .expect("failed to spawn shard worker");
            txs.push(tx);
            handles.push(handle);
        }
        ShardPool {
            txs,
            rx: res_rx,
            handles,
            workers,
        }
    }

    /// Runs one data-parallel step: broadcasts `weights`, executes `tasks`
    /// across the pool, then folds each shard's gradients into `params`
    /// (which the caller has zeroed) in ascending shard order. Returns the
    /// shard-weighted loss parts.
    ///
    /// # Panics
    /// Panics if a worker has died.
    pub fn step(
        &self,
        params: &[Parameter],
        weights: Vec<Tensor>,
        tasks: Vec<ShardTask>,
    ) -> LossParts {
        let n = tasks.len();
        assert!(n >= 1, "a step needs at least one shard");
        let weights = Arc::new(weights);
        let mut per_worker: Vec<Vec<ShardTask>> = (0..self.workers).map(|_| Vec::new()).collect();
        for t in tasks {
            per_worker[t.index % self.workers].push(t);
        }
        for (w, batch) in per_worker.into_iter().enumerate() {
            if !batch.is_empty() {
                self.txs[w]
                    .send(WorkerMsg::Step {
                        weights: weights.clone(),
                        tasks: batch,
                    })
                    .expect("shard worker hung up");
            }
        }
        let mut results: Vec<Option<ShardResult>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, res) = self.rx.recv().expect("shard worker died mid-step");
            results[idx] = Some(res);
        }
        // fixed reduction order: ascending shard index, whole shards at a
        // time — this is what makes the result worker-count independent
        let _lat = yollo_obs::time_hist!("train.reduce_ns");
        let _span = yollo_obs::span!("train.reduce");
        let mut parts = LossParts::default();
        for res in results
            .into_iter()
            .map(|r| r.expect("every shard reports once"))
        {
            for (p, g) in params.iter().zip(&res.grads) {
                p.accumulate_grad_scaled(g, res.weight);
            }
            parts.att += res.weight * res.parts.att;
            parts.cls += res.weight * res.parts.cls;
            parts.reg += res.weight * res.parts.reg;
            parts.total += res.weight * res.parts.total;
        }
        parts
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            // a dead worker already dropped its receiver; nothing to signal
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    cfg: YolloConfig,
    vocab: Vocab,
    rx: Receiver<WorkerMsg>,
    out: Sender<(usize, ShardResult)>,
) {
    // the replica lives for the whole run; weights are refreshed by every
    // broadcast, so the init seed is irrelevant
    let mut model = Yollo::new(cfg, 0);
    model.set_vocab(vocab);
    let replica_params = model.parameters();
    // Recycling tape buffers through a TapeArena is opt-in: the
    // `matmul_fwd_bwd_arena` bench row shows the arena ~1.75x SLOWER than
    // fresh per-step tapes for matmul-dominated graphs (the allocator
    // already serves these sizes well, and the arena adds bookkeeping on
    // every node). It only pays when a step allocates many small tape
    // nodes and the allocator is the bottleneck — set YOLLO_TAPE_ARENA=1
    // to measure on a given workload. Either way the math is identical.
    let arena = match std::env::var("YOLLO_TAPE_ARENA") {
        Ok(v) if v == "1" => Some(TapeArena::new()),
        _ => None,
    };
    while let Ok(msg) = rx.recv() {
        let WorkerMsg::Step { weights, tasks } = msg else {
            break;
        };
        // pin intra-op fan-out to one thread: shard math must not depend
        // on how many cores the machine has (and W replicas running
        // multi-threaded ops would oversubscribe it anyway)
        parallel::with_threads(1, || {
            for (p, w) in replica_params.iter().zip(weights.iter()) {
                p.set_value(w.clone());
            }
            for task in tasks {
                let _lat = yollo_obs::time_hist!("train.shard_ns");
                let _span = yollo_obs::span!("train.shard");
                for p in &replica_params {
                    p.zero_grad();
                }
                let mut rng = task.rng.clone();
                let g = match &arena {
                    Some(a) => Graph::with_arena(a.clone()),
                    None => Graph::new(),
                };
                let bind = Binder::new(&g);
                let fwd = model.forward(&bind, g.leaf(task.images), &task.queries);
                let (loss, parts) = model.loss(&bind, &fwd, &task.targets, &mut rng);
                loss.backward();
                bind.harvest();
                let grads = replica_params.iter().map(Parameter::grad).collect();
                let result = ShardResult {
                    grads,
                    parts,
                    weight: task.weight,
                };
                if out.send((task.index, result)).is_err() {
                    return; // main thread is gone; shut down quietly
                }
            }
        });
    }
}
