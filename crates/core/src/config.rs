use serde::{Deserialize, Serialize};
use yollo_backbone::BackboneKind;
use yollo_detect::{AnchorSpec, MatchConfig, OffsetEncoding};
use yollo_synthref::Dataset;

/// Which Rel2Att relation-map quadrants are active (Table 4 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttentionAblation {
    /// Full relation map (the paper's model).
    #[default]
    Full,
    /// Zero out `R_vv` and `R_tt` ("without image & query self-attention").
    NoSelfAttention,
    /// Zero out `R_vt` and `R_tv` ("without co-attention") — the model then
    /// grounds blind to the query.
    NoCoAttention,
}

impl AttentionAblation {
    /// Report label matching Table 4 rows.
    pub fn name(self) -> &'static str {
        match self {
            AttentionAblation::Full => "YOLLO",
            AttentionAblation::NoSelfAttention => "YOLLO (without image & query self-attention)",
            AttentionAblation::NoCoAttention => "YOLLO (without co-attention)",
        }
    }
}

/// Hyper-parameters of a [`Yollo`](crate::Yollo) model.
///
/// Paper defaults (§4.2): 3 stacked Rel2Att modules, λ = 1, ResNet-50 C4
/// backbone, 512-d embeddings; dimensions here are scaled to the synthetic
/// substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YolloConfig {
    /// Input image width (must divide by the backbone stride).
    pub image_width: usize,
    /// Input image height.
    pub image_height: usize,
    /// Input channels (5: RGB + coordinate channels).
    pub in_channels: usize,
    /// Backbone variant.
    pub backbone: BackboneKind,
    /// Shared feature dimension `d_rel` of the Rel2Att modules.
    pub d_rel: usize,
    /// Hidden width of the Rel2Att FFNs.
    pub ffn_hidden: usize,
    /// Number of stacked Rel2Att modules (paper: 3).
    pub n_rel2att: usize,
    /// Vocabulary size for the word-embedding table.
    pub vocab_size: usize,
    /// Fixed (padded) query length.
    pub max_query_len: usize,
    /// Anchor layout of the detection head.
    pub anchors: AnchorSpec,
    /// Anchor labelling/sampling rule (ρ_high, ρ_low, N).
    pub matcher: MatchConfig,
    /// Box-offset parameterisation.
    pub offset_encoding: OffsetEncoding,
    /// Regression-loss weight λ (Eq. 9; paper: 1).
    pub lambda: f64,
    /// Whether the attention loss supervises every layer (true) or only the
    /// last (false).
    pub deep_att_supervision: bool,
    /// Active relation-map quadrants.
    pub ablation: AttentionAblation,
}

impl Default for YolloConfig {
    fn default() -> Self {
        YolloConfig {
            image_width: 72,
            image_height: 48,
            in_channels: 5,
            backbone: BackboneKind::TinyResNet,
            d_rel: 48,
            ffn_hidden: 64,
            n_rel2att: 3,
            vocab_size: 64,
            max_query_len: 16,
            anchors: AnchorSpec::default(),
            matcher: MatchConfig {
                sample_n: 64, // paper: 256; scaled to the smaller anchor count
                ..MatchConfig::default()
            },
            offset_encoding: OffsetEncoding::RcnnLog,
            lambda: 1.0,
            deep_att_supervision: true,
            ablation: AttentionAblation::Full,
        }
    }
}

impl YolloConfig {
    /// Derives a config matching a dataset's image size, vocabulary and
    /// maximum query length.
    ///
    /// # Panics
    /// Panics if the dataset has no scenes.
    pub fn for_dataset(ds: &Dataset) -> Self {
        let scene = ds.scenes().first().expect("dataset has scenes");
        YolloConfig {
            image_width: scene.width,
            image_height: scene.height,
            vocab_size: ds.build_vocab().len(),
            max_query_len: ds.max_query_len().max(4),
            ..YolloConfig::default()
        }
    }

    /// Feature-map width (`w` in §3.1).
    pub fn feat_w(&self) -> usize {
        self.image_width / self.anchors.stride
    }

    /// Feature-map height (`h` in §3.1).
    pub fn feat_h(&self) -> usize {
        self.image_height / self.anchors.stride
    }

    /// Region-sequence length `m = w × h`.
    pub fn num_regions(&self) -> usize {
        self.feat_w() * self.feat_h()
    }

    /// Total anchor count `m × K`.
    pub fn num_anchors(&self) -> usize {
        self.num_regions() * self.anchors.per_cell()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.image_width.is_multiple_of(self.anchors.stride)
            || !self.image_height.is_multiple_of(self.anchors.stride)
        {
            return Err("image size must be divisible by the anchor stride".into());
        }
        if self.d_rel == 0 || self.n_rel2att == 0 {
            return Err("d_rel and n_rel2att must be positive".into());
        }
        if self.vocab_size < 2 {
            return Err("vocab must include PAD and UNK".into());
        }
        if self.max_query_len == 0 {
            return Err("max_query_len must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_synthref::{DatasetConfig, DatasetKind};

    #[test]
    fn default_config_is_valid() {
        let c = YolloConfig::default();
        c.validate().unwrap();
        assert_eq!(c.feat_w(), 9);
        assert_eq!(c.feat_h(), 6);
        assert_eq!(c.num_regions(), 54);
        assert_eq!(c.num_anchors(), 54 * 9);
    }

    #[test]
    fn for_dataset_adopts_vocab_and_len() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let c = YolloConfig::for_dataset(&ds);
        assert_eq!(c.vocab_size, ds.build_vocab().len());
        assert!(c.max_query_len >= ds.max_query_len());
        c.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_sizes() {
        let c = YolloConfig {
            image_width: 70,
            ..YolloConfig::default()
        };
        assert!(c.validate().is_err());
        let c = YolloConfig {
            vocab_size: 1,
            ..YolloConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
