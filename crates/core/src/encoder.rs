use crate::YolloConfig;
use rand::Rng;
use yollo_backbone::Backbone;
use yollo_nn::{Binder, Embedding, Linear, Module, ParamList};
use yollo_tensor::{Element, Tensor, Var};
use yollo_text::{sinusoidal_encoding, Vocab};

/// §3.1's feature encoder: image → region sequence `V`, query → word
/// sequence `T`.
///
/// The image path runs the C4 backbone and projects its channels to
/// `d_rel`; the query path sums word embeddings (optionally initialised
/// from word2vec, as the paper initialises from LM-1B word2vec) with
/// learned absolute-position embeddings (initialised sinusoidally), then
/// zeroes PAD positions.
#[derive(Debug)]
pub struct FeatureEncoder<E: Element = f64> {
    backbone: Backbone<E>,
    proj: Linear<E>,
    word_emb: Embedding<E>,
    pos_emb: Embedding<E>,
    max_query_len: usize,
}

impl FeatureEncoder {
    /// Builds the encoder from a config.
    pub fn new(cfg: &YolloConfig, rng: &mut impl Rng) -> Self {
        let backbone = Backbone::new(cfg.backbone, cfg.in_channels, rng);
        let proj = Linear::new(
            "encoder.proj",
            backbone.out_channels(),
            cfg.d_rel,
            true,
            rng,
        );
        let word_emb = Embedding::new("encoder.word", cfg.vocab_size, cfg.d_rel, rng);
        let pos_emb = Embedding::from_pretrained(
            "encoder.pos",
            sinusoidal_encoding(cfg.max_query_len, cfg.d_rel).scale(0.5),
        );
        FeatureEncoder {
            backbone,
            proj,
            word_emb,
            pos_emb,
            max_query_len: cfg.max_query_len,
        }
    }

    /// Replaces the word-embedding table with pre-trained vectors
    /// (e.g. [`yollo_text::Word2Vec::input_embeddings`]).
    ///
    /// # Panics
    /// Panics if the shape differs from the current table.
    pub fn load_word_embeddings(&mut self, weights: Tensor) {
        self.word_emb.parameters()[0].set_value(weights);
    }
}

impl<E: Element> FeatureEncoder<E> {
    /// The image backbone.
    pub fn backbone(&self) -> &Backbone<E> {
        &self.backbone
    }

    /// This encoder with every weight converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> FeatureEncoder<F> {
        FeatureEncoder {
            backbone: self.backbone.cast(),
            proj: self.proj.cast(),
            word_emb: self.word_emb.cast(),
            pos_emb: self.pos_emb.cast(),
            max_query_len: self.max_query_len,
        }
    }

    /// Encodes a batch of images `[B, C, H, W]` into `V = [B, m, d_rel]`.
    pub fn encode_image<'g>(&self, bind: &Binder<'g, E>, images: Var<'g, E>) -> Var<'g, E> {
        let feats = self.backbone.forward(bind, images); // [B, C, fh, fw]
        let d = feats.dims();
        let (b, c, m) = (d[0], d[1], d[2] * d[3]);
        let seq = feats.reshape(&[b, c, m]).transpose(); // [B, m, C]
        self.proj.forward(bind, seq).relu()
    }

    /// Encodes padded query id sequences into `T = [B, n, d_rel]`, zeroing
    /// PAD positions.
    ///
    /// # Panics
    /// Panics if any query's length differs from `max_query_len`.
    pub fn encode_query<'g>(&self, bind: &Binder<'g, E>, queries: &[Vec<usize>]) -> Var<'g, E> {
        let b = queries.len();
        let n = self.max_query_len;
        let mut flat = Vec::with_capacity(b * n);
        for q in queries {
            assert_eq!(q.len(), n, "query must be padded to {n}");
            flat.extend_from_slice(q);
        }
        let words = self
            .word_emb
            .forward(bind, &flat)
            .reshape(&[b, n, self.word_emb.dim()]);
        let positions: Vec<usize> = (0..n).collect();
        let pos = self.pos_emb.forward(bind, &positions); // [n, d]
        let summed = words.add(pos);
        // zero out PAD rows so padding cannot influence the relation map
        summed.mul(bind.graph().leaf(self.pad_mask(queries)))
    }

    /// The `[B, n, 1]` mask with 0 at PAD positions and 1 elsewhere,
    /// threaded through the Rel2Att stack to keep padding inert.
    pub fn pad_mask(&self, queries: &[Vec<usize>]) -> Tensor<E> {
        let n = self.max_query_len;
        Tensor::from_fn(&[queries.len(), n, 1], |flat_idx| {
            let (bi, ni) = (flat_idx / n, flat_idx % n);
            if queries[bi][ni] == Vocab::pad_id() {
                E::ZERO
            } else {
                E::ONE
            }
        })
    }
}

impl Module for FeatureEncoder {
    fn parameters(&self) -> ParamList {
        let mut ps = self.backbone.parameters();
        ps.extend(self.proj.parameters());
        ps.extend(self.word_emb.parameters());
        ps.extend(self.pos_emb.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    fn encoder() -> FeatureEncoder {
        let mut rng = StdRng::seed_from_u64(0);
        FeatureEncoder::new(&YolloConfig::default(), &mut rng)
    }

    #[test]
    fn image_sequence_shape() {
        let enc = encoder();
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new();
        let b = Binder::new(&g);
        let imgs = g.leaf(Tensor::randn(&[2, 5, 48, 72], &mut rng));
        let v = enc.encode_image(&b, imgs);
        assert_eq!(v.dims(), vec![2, 54, 48]);
    }

    #[test]
    fn query_sequence_shape_and_pad_zeroing() {
        let enc = encoder();
        let g = Graph::new();
        let b = Binder::new(&g);
        let n = YolloConfig::default().max_query_len;
        let mut q = vec![2usize, 3, 4];
        q.resize(n, Vocab::pad_id());
        let t = enc.encode_query(&b, &[q]);
        assert_eq!(t.dims(), vec![1, n, 48]);
        let tv = t.value();
        // non-pad row is non-zero, pad rows are exactly zero
        assert!(tv.slice(1, 0, 1).norm() > 0.0);
        for p in 3..n {
            assert_eq!(tv.slice(1, p, 1).norm(), 0.0, "pad row {p} not zeroed");
        }
    }

    #[test]
    fn position_makes_order_matter() {
        let enc = encoder();
        let g = Graph::new();
        let b = Binder::new(&g);
        let n = YolloConfig::default().max_query_len;
        let mut q1 = vec![2usize, 3];
        q1.resize(n, Vocab::pad_id());
        let mut q2 = vec![3usize, 2];
        q2.resize(n, Vocab::pad_id());
        let t1 = enc.encode_query(&b, &[q1]).value();
        let t2 = enc.encode_query(&b, &[q2]).value();
        assert!(t1.max_abs_diff(&t2) > 1e-6, "word order had no effect");
    }

    #[test]
    fn pretrained_embeddings_are_adopted() {
        let mut enc = encoder();
        let cfg = YolloConfig::default();
        let w = Tensor::full(&[cfg.vocab_size, cfg.d_rel], 0.25);
        enc.load_word_embeddings(w.clone());
        assert_eq!(enc.word_emb.parameters()[0].value(), w);
    }
}
