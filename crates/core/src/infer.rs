//! Inference: §3.3 "simply pick the top-1 scored region proposal as the
//! final prediction" — one forward pass, no proposal list, no matching
//! stage, no NMS.

use crate::{Yollo, YolloOutput};
use serde::{Deserialize, Serialize};
use yollo_detect::BBox;
use yollo_nn::Binder;
use yollo_synthref::{Dataset, GroundingSample, Scene, Split};
use yollo_tensor::{Element, Graph, Tensor};
use yollo_text::tokenize;

/// A grounded box with its confidence and the final-layer attention map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundingPrediction {
    /// Predicted target box, clipped to the image.
    pub bbox: BBox,
    /// Sigmoid confidence of the winning anchor.
    pub score: f64,
    /// Softmax-normalised final-layer image attention, one value per
    /// feature-map cell (row-major) — the Figure 5 heat map.
    pub attention: Vec<f64>,
}

impl GroundingPrediction {
    /// Shannon entropy of the attention distribution (nats). Low entropy =
    /// a confident, peaked highlight; the uniform maximum is `ln(m)`.
    pub fn attention_entropy(&self) -> f64 {
        -self
            .attention
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// The flat index of the attention peak.
    ///
    /// # Panics
    /// Panics if the attention map is empty.
    pub fn attention_peak(&self) -> usize {
        assert!(!self.attention.is_empty(), "empty attention map");
        let mut best = 0;
        for (i, &v) in self.attention.iter().enumerate() {
            if v > self.attention[best] {
                best = i;
            }
        }
        best
    }
}

/// Per-sample IoUs of an evaluation run (ACC@η / COCO ACC / MIOU helpers
/// live on [`yollo_eval::IouMetrics`]).
pub type EvalOutcome = yollo_eval::IouMetrics;

impl<E: Element> Yollo<E> {
    fn predictions_from_output(&self, out: &YolloOutput<'_, E>) -> Vec<GroundingPrediction> {
        let scores = out.scores.value();
        let offsets = out.offsets.value();
        let att = out
            .att_layers
            .last()
            .expect("at least one Rel2Att layer")
            .value()
            .softmax_lastdim();
        let b = scores.dims()[0];
        let a = scores.dims()[1];
        let (w, h) = (
            self.config().image_width as f64,
            self.config().image_height as f64,
        );
        // read the batch rows through flat indexing — slice/reshape would
        // copy every row of every tensor per sample
        let ss = scores.as_slice();
        let os = offsets.as_slice();
        let ats = att.as_slice();
        let m = att.numel() / b;
        (0..b)
            .map(|bi| {
                let row = &ss[bi * a..(bi + 1) * a];
                // first-maximum argmax, matching Tensor::argmax's tie rule
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                let logit = row[best].to_f64();
                let off = &os[(bi * a + best) * 4..(bi * a + best) * 4 + 4];
                let t = [
                    off[0].to_f64(),
                    off[1].to_f64(),
                    off[2].to_f64(),
                    off[3].to_f64(),
                ];
                let anchor = self.anchors().boxes()[best];
                let bbox = BBox::decode(&anchor, t, self.config().offset_encoding).clip_to(w, h);
                GroundingPrediction {
                    bbox,
                    score: 1.0 / (1.0 + (-logit).exp()),
                    attention: ats[bi * m..(bi + 1) * m]
                        .iter()
                        .map(|v| v.to_f64())
                        .collect(),
                }
            })
            .collect()
    }

    /// Grounds a batch of pre-encoded inputs (no gradient bookkeeping).
    pub fn predict_batch(
        &self,
        images: Tensor<E>,
        queries: &[Vec<usize>],
    ) -> Vec<GroundingPrediction> {
        let _span =
            yollo_obs::span!("infer.predict_batch").with_arg("samples", queries.len() as u64);
        let _lat = yollo_obs::time_hist!("infer.batch_ns");
        yollo_obs::counter!("infer.batches").incr();
        yollo_obs::counter!("infer.samples").add(queries.len() as u64);
        let g = Graph::new();
        let bind = Binder::new(&g);
        let out = self.forward(&bind, g.leaf(images), queries);
        let _decode = yollo_obs::span!("infer.decode");
        self.predictions_from_output(&out)
    }

    /// Top-`k` candidate boxes per sample, best first — useful for
    /// diagnosing near-misses even though the paper's inference rule is
    /// strictly top-1 (§3.3).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn predict_topk(
        &self,
        images: Tensor<E>,
        queries: &[Vec<usize>],
        k: usize,
    ) -> Vec<Vec<GroundingPrediction>> {
        assert!(k > 0, "k must be positive");
        let g = Graph::new();
        let bind = Binder::new(&g);
        let out = self.forward(&bind, g.leaf(images), queries);
        let scores = out.scores.value();
        let offsets = out.offsets.value();
        let att = out
            .att_layers
            .last()
            .expect("at least one Rel2Att layer")
            .value()
            .softmax_lastdim();
        let (b, a) = (scores.dims()[0], scores.dims()[1]);
        let (w, h) = (
            self.config().image_width as f64,
            self.config().image_height as f64,
        );
        let ss = scores.as_slice();
        let os = offsets.as_slice();
        let ats = att.as_slice();
        let m = att.numel() / b;
        (0..b)
            .map(|bi| {
                let row = &ss[bi * a..(bi + 1) * a];
                let mut order: Vec<usize> = (0..a).collect();
                order.sort_by(|&x, &y| row[y].partial_cmp(&row[x]).expect("finite logits"));
                let attention = &ats[bi * m..(bi + 1) * m];
                order
                    .into_iter()
                    .take(k)
                    .map(|idx| {
                        let off = &os[(bi * a + idx) * 4..(bi * a + idx) * 4 + 4];
                        let t = [
                            off[0].to_f64(),
                            off[1].to_f64(),
                            off[2].to_f64(),
                            off[3].to_f64(),
                        ];
                        let anchor = self.anchors().boxes()[idx];
                        GroundingPrediction {
                            bbox: BBox::decode(&anchor, t, self.config().offset_encoding)
                                .clip_to(w, h),
                            score: 1.0 / (1.0 + (-row[idx].to_f64()).exp()),
                            attention: attention.iter().map(|v| v.to_f64()).collect(),
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl Yollo {
    /// Grounds one dataset sample.
    pub fn predict_sample(&self, ds: &Dataset, sample: &GroundingSample) -> GroundingPrediction {
        let (images, queries, _) = self.encode_batch(ds, &[sample]);
        self.predict_batch(images, &queries)
            .pop()
            .expect("one prediction per sample")
    }

    /// Grounds a free-form sentence against a scene (the public "app" API —
    /// see the `quickstart` example).
    pub fn predict_scene_query(&self, scene: &Scene, sentence: &str) -> GroundingPrediction {
        let tokens = tokenize(sentence);
        let ids = self
            .vocab()
            .encode_padded(&tokens, self.config().max_query_len);
        let img =
            scene
                .render()
                .reshape(&[1, self.config().in_channels, scene.height, scene.width]);
        self.predict_batch(img, &[ids])
            .pop()
            .expect("one prediction")
    }

    /// Evaluates the model over a whole split, returning per-sample IoUs.
    pub fn evaluate(&self, ds: &Dataset, split: Split) -> EvalOutcome {
        self.evaluate_samples(ds, ds.samples(split))
    }

    /// Evaluates on an explicit sample list (used for subsampled mid-training
    /// validation).
    pub fn evaluate_samples(&self, ds: &Dataset, samples: &[GroundingSample]) -> EvalOutcome {
        let mut ious = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(16) {
            let refs: Vec<&GroundingSample> = chunk.iter().collect();
            let (images, queries, targets) = self.encode_batch(ds, &refs);
            let preds = self.predict_batch(images, &queries);
            for (p, t) in preds.iter().zip(&targets) {
                ious.push(p.bbox.iou(t));
            }
        }
        EvalOutcome::new(ious)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YolloConfig;
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn tiny() -> (Yollo, Dataset) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let cfg = YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 1,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut m = Yollo::new(cfg, 1);
        m.set_vocab(ds.build_vocab());
        (m, ds)
    }

    #[test]
    fn predictions_are_inside_the_image() {
        let (model, ds) = tiny();
        for s in ds.samples(Split::Val) {
            let p = model.predict_sample(&ds, s);
            assert!(p.bbox.x >= 0.0 && p.bbox.y >= 0.0);
            assert!(p.bbox.x2() <= model.config().image_width as f64 + 1e-9);
            assert!(p.bbox.y2() <= model.config().image_height as f64 + 1e-9);
            assert!((0.0..=1.0).contains(&p.score));
            let att_sum: f64 = p.attention.iter().sum();
            assert!((att_sum - 1.0).abs() < 1e-9, "attention not normalised");
        }
    }

    #[test]
    fn sentence_api_matches_sample_api() {
        let (model, ds) = tiny();
        let s = &ds.samples(Split::Val)[0];
        let a = model.predict_sample(&ds, s);
        let b = model.predict_scene_query(ds.scene_of(s), &s.sentence);
        assert_eq!(a.bbox, b.bbox);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn topk_is_sorted_and_topk1_matches_predict() {
        let (model, ds) = tiny();
        let s = &ds.samples(Split::Val)[0];
        let (images, queries, _) = model.encode_batch(&ds, &[s]);
        let top = model.predict_topk(images.clone(), &queries, 5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].len(), 5);
        for w in top[0].windows(2) {
            assert!(w[0].score >= w[1].score, "top-k not sorted");
        }
        let single = model.predict_batch(images, &queries);
        assert_eq!(single[0].bbox, top[0][0].bbox);
    }

    #[test]
    fn attention_entropy_bounds() {
        let p = GroundingPrediction {
            bbox: BBox::new(0.0, 0.0, 1.0, 1.0),
            score: 0.5,
            attention: vec![0.25; 4],
        };
        assert!((p.attention_entropy() - 4.0f64.ln()).abs() < 1e-12);
        let q = GroundingPrediction {
            attention: vec![1.0, 0.0, 0.0, 0.0],
            ..p.clone()
        };
        assert_eq!(q.attention_entropy(), 0.0);
        assert_eq!(q.attention_peak(), 0);
    }

    #[test]
    fn untrained_model_is_roughly_at_chance() {
        let (model, ds) = tiny();
        let out = model.evaluate(&ds, Split::Val);
        assert_eq!(out.ious.len(), ds.samples(Split::Val).len());
        // untrained: should not be anywhere near solved
        assert!(out.acc_at(0.5) < 0.8);
    }
}
