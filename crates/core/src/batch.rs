//! Serving-side batch helpers: strict query padding, image stacking and
//! hashable `(scene, query)` request keys.
//!
//! These live in `yollo-core` rather than `yollo-serve` because they define
//! the *contract* between a batching front-end and
//! [`Yollo::predict_batch`](crate::Yollo::predict_batch): what a padded
//! query batch looks like, and which two requests are allowed to share a
//! cached prediction. [`encode_query_strict`] deliberately differs from
//! [`Vocab::encode_padded`], which silently truncates over-long queries — a
//! server must refuse such a request with a typed error instead of quietly
//! grounding a clipped sentence.

use std::error::Error;
use std::fmt;

use yollo_synthref::Scene;
use yollo_tensor::Tensor;
use yollo_text::{tokenize, Vocab};

/// A query exceeded the maximum token budget of the model.
///
/// Returned by [`encode_query_strict`]; unlike
/// [`Vocab::encode_padded`] the over-long query is rejected, never
/// silently truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTooLong {
    /// Tokens in the offending query.
    pub tokens: usize,
    /// The maximum the model accepts.
    pub max_tokens: usize,
}

impl fmt::Display for QueryTooLong {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query has {} tokens but the model accepts at most {}",
            self.tokens, self.max_tokens
        )
    }
}

impl Error for QueryTooLong {}

/// Tokenises and encodes `query`, padding with PAD to exactly `max_tokens`.
///
/// # Errors
/// Returns [`QueryTooLong`] when the query tokenises to more than
/// `max_tokens` tokens (instead of truncating, as
/// [`Vocab::encode_padded`] would).
pub fn encode_query_strict(
    vocab: &Vocab,
    query: &str,
    max_tokens: usize,
) -> Result<Vec<usize>, QueryTooLong> {
    let tokens = tokenize(query);
    if tokens.len() > max_tokens {
        return Err(QueryTooLong {
            tokens: tokens.len(),
            max_tokens,
        });
    }
    let mut ids: Vec<usize> = tokens.iter().map(|t| vocab.id_or_unk(t)).collect();
    ids.resize(max_tokens, Vocab::pad_id());
    Ok(ids)
}

/// The canonical form of a query for cache lookup: lowercase word tokens
/// joined by single spaces, so `"The  red circle!"` and `"the red circle"`
/// key the same cache entry.
pub fn normalize_query(query: &str) -> String {
    tokenize(query).join(" ")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Order-sensitive 64-bit FNV-1a content hash of a scene: dimensions plus
/// every object's kind, colour and exact box bits. Two scenes hash equal
/// iff they render identically (same size, same objects in the same
/// order), which is exactly the equivalence a prediction cache needs.
pub fn scene_hash(scene: &Scene) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &(scene.width as u64).to_le_bytes());
    fnv1a(&mut h, &(scene.height as u64).to_le_bytes());
    for o in &scene.objects {
        fnv1a(&mut h, &(o.kind as u64).to_le_bytes());
        fnv1a(&mut h, &(o.color as u64).to_le_bytes());
        for v in [o.bbox.x, o.bbox.y, o.bbox.w, o.bbox.h] {
            fnv1a(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    h
}

/// A hashable cache key identifying one grounding request: the scene's
/// content hash paired with the normalised query text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// [`scene_hash`] of the request's scene.
    pub scene: u64,
    /// [`normalize_query`] of the request's sentence.
    pub query: String,
}

impl RequestKey {
    /// Builds the key for a scene/sentence pair.
    pub fn new(scene: &Scene, query: &str) -> Self {
        RequestKey {
            scene: scene_hash(scene),
            query: normalize_query(query),
        }
    }
}

/// Stacks equal-shaped `[c*h*w]` image rows into one `[B, c, h, w]` batch
/// tensor, the image-side input of
/// [`Yollo::predict_batch`](crate::Yollo::predict_batch).
///
/// # Panics
/// Panics if `rows` is empty or any row's length differs from `c*h*w`.
pub fn stack_images(rows: &[Vec<f64>], c: usize, h: usize, w: usize) -> Tensor {
    assert!(!rows.is_empty(), "cannot stack an empty image batch");
    let per = c * h * w;
    let mut data = Vec::with_capacity(rows.len() * per);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            per,
            "image row {i} has {} values, expected {per} ({c}x{h}x{w})",
            row.len()
        );
        data.extend_from_slice(row);
    }
    Tensor::from_vec(data, &[rows.len(), c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_synthref::SceneBuilder;
    use yollo_synthref::{ColorName, ShapeKind};

    fn vocab() -> Vocab {
        let toks = tokenize("the red circle left of the square");
        Vocab::build([toks.iter().map(String::as_str)], 1)
    }

    fn scene() -> Scene {
        SceneBuilder::new(72, 48)
            .object(ShapeKind::Circle, ColorName::Red, 10.0, 10.0, 12.0, 12.0)
            .object(ShapeKind::Square, ColorName::Blue, 40.0, 20.0, 14.0, 14.0)
            .build()
    }

    #[test]
    fn strict_encoding_pads_but_never_truncates() {
        let v = vocab();
        let ids = encode_query_strict(&v, "the red circle", 5).unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[3], Vocab::pad_id());
        // exactly at the limit is fine
        assert!(encode_query_strict(&v, "the red circle", 3).is_ok());
        // one over the limit is a typed error, not a silent clip
        let err = encode_query_strict(&v, "the red circle", 2).unwrap_err();
        assert_eq!(
            err,
            QueryTooLong {
                tokens: 3,
                max_tokens: 2
            }
        );
    }

    #[test]
    fn normalisation_collapses_case_space_and_punctuation() {
        assert_eq!(normalize_query("The  RED circle!"), "the red circle");
        assert_eq!(normalize_query("the red circle"), "the red circle");
        assert_ne!(normalize_query("red circle"), normalize_query("circle red"));
    }

    #[test]
    fn scene_hash_is_content_sensitive() {
        let a = scene();
        let b = scene();
        assert_eq!(scene_hash(&a), scene_hash(&b), "identical scenes");
        let mut moved = a.clone();
        moved.objects[0].bbox.x += 1.0;
        assert_ne!(scene_hash(&a), scene_hash(&moved), "moved object");
        let mut recoloured = a.clone();
        recoloured.objects[1].color = ColorName::Green;
        assert_ne!(scene_hash(&a), scene_hash(&recoloured), "recoloured");
    }

    #[test]
    fn request_keys_unify_equivalent_requests() {
        let s = scene();
        assert_eq!(
            RequestKey::new(&s, "The red circle."),
            RequestKey::new(&s, "the  red circle")
        );
        assert_ne!(
            RequestKey::new(&s, "the red circle"),
            RequestKey::new(&s, "the blue square")
        );
    }

    #[test]
    fn stack_images_concatenates_rows_in_order() {
        let rows = vec![vec![1.0; 6], vec![2.0; 6]];
        let t = stack_images(&rows, 1, 2, 3);
        assert_eq!(t.dims(), vec![2, 1, 2, 3]);
        assert_eq!(&t.as_slice()[..6], &[1.0; 6]);
        assert_eq!(&t.as_slice()[6..], &[2.0; 6]);
    }

    #[test]
    #[should_panic(expected = "expected 6")]
    fn stack_images_rejects_ragged_rows() {
        stack_images(&[vec![0.0; 6], vec![0.0; 5]], 1, 2, 3);
    }
}
