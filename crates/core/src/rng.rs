//! A serialisable training RNG.
//!
//! [`rand::rngs::StdRng`] cannot be snapshotted — its internal state is
//! private and non-serialisable — so a training run using it can never be
//! resumed bit-for-bit. [`TrainRng`] is a xoshiro256** generator whose
//! 256-bit state is a plain serde-able struct: the trainer checkpoints it
//! alongside the weights and optimiser moments, and a resumed run draws
//! exactly the same batch indices and anchor samples as an uninterrupted
//! one.

use rand::{Error, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Serialisable xoshiro256** PRNG used by the training loop.
///
/// Not cryptographic; chosen for its tiny, explicit state (four `u64`s)
/// and excellent statistical quality. Implements [`rand::RngCore`], so it
/// drops into every `&mut impl Rng` API in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainRng {
    s: [u64; 4],
}

impl TrainRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion,
    /// the initialisation recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        // the all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four zero outputs in a row, but guard anyway
        if s == [0; 4] {
            s[0] = 1;
        }
        TrainRng { s }
    }

    /// The raw 256-bit state (for tests and diagnostics).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Deals an independent child generator off this stream.
    ///
    /// Consumes exactly one `u64` of the parent stream and expands it
    /// through SplitMix64 (the same initialisation as
    /// [`TrainRng::seed_from_u64`]), so the parent's consumption per fork
    /// is fixed — the property the data-parallel trainer's bit-for-bit
    /// resume rests on — and the child's stream is decorrelated from the
    /// parent's continuation.
    pub fn fork(&mut self) -> TrainRng {
        TrainRng::seed_from_u64(self.next_u64())
    }
}

impl RngCore for TrainRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for TrainRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            return TrainRng::seed_from_u64(0);
        }
        TrainRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        TrainRng::seed_from_u64(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::Rng;

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // state {1, 2, 3, 4} → first outputs of the reference C
        // implementation (Blackman & Vigna, xoshiro256starstar.c)
        let mut rng = TrainRng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11520,
                0,
                1509978240,
                1215971899390074240,
                1216172134540287360
            ]
        );
    }

    #[test]
    fn deterministic_under_seed_and_distinct_across_seeds() {
        let mut a = TrainRng::seed_from_u64(7);
        let mut b = TrainRng::seed_from_u64(7);
        let mut c = TrainRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn serde_roundtrip_resumes_mid_stream() {
        let mut rng = TrainRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let json = serde_json::to_string(&rng).unwrap();
        let mut restored: TrainRng = serde_json::from_str(&json).unwrap();
        let a: Vec<u64> = (0..50).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..50).map(|_| restored.next_u64()).collect();
        assert_eq!(a, b, "restored rng must continue the exact stream");
    }

    #[test]
    fn works_with_rand_adapters() {
        let mut rng = TrainRng::seed_from_u64(3);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn fork_consumes_one_draw_and_decorrelates() {
        let mut a = TrainRng::seed_from_u64(5);
        let mut b = TrainRng::seed_from_u64(5);
        let mut child = a.fork();
        let skip = b.next_u64(); // fork costs exactly one parent draw
        assert_eq!(a.state(), b.state());
        assert_eq!(child.state(), TrainRng::seed_from_u64(skip).state());
        let cs: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        let ps: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_ne!(cs, ps, "child must not mirror the parent stream");
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut a = TrainRng::seed_from_u64(1);
        let mut b = TrainRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        let first = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &first);
        assert!(buf.iter().any(|&x| x != 0));
    }
}
