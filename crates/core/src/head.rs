use rand::Rng;
use yollo_nn::{Binder, Conv2d, Module, ParamList};
use yollo_tensor::{Conv2dSpec, Element, Var};

/// §3.3's RPN-like target detection network.
///
/// Two 3×3 convolutions map the attended feature map `M̃` to a lower
/// dimension, then two sibling 1×1 convolutions (the "fully-connected
/// layers" applied per sliding window) emit, for each of the `K` anchors at
/// each cell, a confidence logit `p̂` and a box-offset tuple `ε`.
#[derive(Debug)]
pub struct DetectionHead<E: Element = f64> {
    conv1: Conv2d<E>,
    conv2: Conv2d<E>,
    cls: Conv2d<E>,
    reg: Conv2d<E>,
    anchors_per_cell: usize,
}

impl DetectionHead {
    /// Builds the head for `d_rel`-channel inputs and `k` anchors per cell.
    pub fn new(name: &str, d_rel: usize, hidden: usize, k: usize, rng: &mut impl Rng) -> Self {
        let s3 = Conv2dSpec { stride: 1, pad: 1 };
        let s1 = Conv2dSpec { stride: 1, pad: 0 };
        DetectionHead {
            conv1: Conv2d::new(&format!("{name}.conv1"), d_rel, hidden, 3, s3, true, rng),
            conv2: Conv2d::new(&format!("{name}.conv2"), hidden, hidden, 3, s3, true, rng),
            cls: Conv2d::new(&format!("{name}.cls"), hidden, k, 1, s1, true, rng),
            reg: Conv2d::new(&format!("{name}.reg"), hidden, 4 * k, 1, s1, true, rng),
            anchors_per_cell: k,
        }
    }
}

impl<E: Element> DetectionHead<E> {
    /// Predicts `(scores, offsets)` from the attended feature map
    /// `[B, d_rel, fh, fw]`:
    /// scores are `[B, A]` logits and offsets `[B, A, 4]`, with
    /// `A = fh·fw·K` in anchor-grid order (cell-major, then anchor index).
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, feat: Var<'g, E>) -> (Var<'g, E>, Var<'g, E>) {
        let h = self
            .conv2
            .forward(bind, self.conv1.forward(bind, feat).relu())
            .relu();
        let d = h.dims();
        let (b, l) = (d[0], d[2] * d[3]);
        let k = self.anchors_per_cell;
        // [B, K, fh, fw] -> [B, K, L] -> [B, L, K] -> [B, A]
        let scores = self
            .cls
            .forward(bind, h)
            .reshape(&[b, k, l])
            .transpose()
            .reshape(&[b, l * k]);
        // [B, 4K, fh, fw] -> [B, 4K, L] -> [B, L, 4K] -> [B, A, 4]
        // channel layout is anchor-major (k*4 + coord), so the final reshape
        // yields anchor-grid order with a trailing coord axis
        let offsets = self
            .reg
            .forward(bind, h)
            .reshape(&[b, 4 * k, l])
            .transpose()
            .reshape(&[b, l * k, 4]);
        (scores, offsets)
    }

    /// This head with every weight converted element-wise to dtype `F`.
    pub(crate) fn cast<F: Element>(&self) -> DetectionHead<F> {
        DetectionHead {
            conv1: self.conv1.cast(),
            conv2: self.conv2.cast(),
            cls: self.cls.cast(),
            reg: self.reg.cast(),
            anchors_per_cell: self.anchors_per_cell,
        }
    }
}

impl Module for DetectionHead {
    fn parameters(&self) -> ParamList {
        let mut ps = self.conv1.parameters();
        ps.extend(self.conv2.parameters());
        ps.extend(self.cls.parameters());
        ps.extend(self.reg.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::{Graph, Tensor};

    #[test]
    fn output_shapes_match_anchor_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let head = DetectionHead::new("h", 16, 12, 9, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let feat = g.leaf(Tensor::randn(&[2, 16, 6, 9], &mut rng));
        let (scores, offsets) = head.forward(&b, feat);
        assert_eq!(scores.dims(), vec![2, 6 * 9 * 9]);
        assert_eq!(offsets.dims(), vec![2, 6 * 9 * 9, 4]);
    }

    #[test]
    fn anchor_order_is_cell_major() {
        // make the cls conv the identity on a one-hot channel input so each
        // output channel k equals input channel k at each cell; then verify
        // the flattened layout index = cell*K + k.
        let mut rng = StdRng::seed_from_u64(1);
        let k = 3;
        let head = DetectionHead::new("h", 4, k, k, &mut rng);
        // conv1, conv2: identity-ish is hard; instead test the pure
        // reshape/transpose path by probing with a crafted hidden map via
        // the cls layer only. Build input so hidden differs per cell, and
        // check that scores vary fastest over k within a cell.
        let g = Graph::new();
        let b = Binder::new(&g);
        let feat = g.leaf(Tensor::from_fn(&[1, 4, 2, 2], |i| i as f64 * 0.1));
        let (scores, _) = head.forward(&b, feat);
        let s = scores.value();
        assert_eq!(s.numel(), 2 * 2 * k);
        // reshaped as [L, K], each row corresponds to one cell
        let rows = s.reshape(&[4, k]);
        // different cells produce different score rows (layout sanity)
        let r0 = rows.slice(0, 0, 1);
        let r3 = rows.slice(0, 3, 1);
        assert!(r0.max_abs_diff(&r3) > 1e-9);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let head = DetectionHead::new("h", 8, 8, 2, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let feat = g.leaf(Tensor::randn(&[1, 8, 3, 3], &mut rng));
        let (scores, offsets) = head.forward(&b, feat);
        (scores.square().sum_all() + offsets.square().sum_all()).backward();
        b.harvest();
        for p in head.parameters() {
            assert!(p.grad_norm() > 0.0, "no grad for {}", p.name());
        }
    }
}
