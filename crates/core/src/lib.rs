//! YOLLO — *You Only Look & Listen Once* — one-stage visual grounding.
//!
//! This crate implements the paper's primary contribution end-to-end:
//!
//! 1. a **feature encoder** (§3.1) turning an image into a dense region
//!    sequence `V` (via a `yollo-backbone` C4 CNN) and a query into a word
//!    sequence `T` (pre-trained embeddings + positional embeddings);
//! 2. a stack of **Relation-to-Attention (Rel2Att) modules** (§3.2) that
//!    build the dense relation map `R = X₁X₂ᵀ/√d` over the concatenated
//!    sequences, split it into self-attention (`R_vv`, `R_tt`) and
//!    co-attention (`R_vt`, `R_tv`) quadrants, and reduce it to attention
//!    masks over image regions and query words, supervised by the attention
//!    loss of Eq. (6);
//! 3. an RPN-like **target detection network** (§3.3) predicting one
//!    confidence score and one box offset per anchor, trained with the
//!    classification + smooth-L1 regression losses of Eqs. (7–8), with the
//!    total loss `L = L_att + L_cls + λ·L_reg` of Eq. (9);
//! 4. a [`Trainer`] (Adam, mini-batches, training-curve logging — Figure 4)
//!    and top-1 [`inference`](Yollo::predict) (§3.3: "simply pick the top-1
//!    scored region proposal", no NMS, no second stage).
//!
//! Training is fault-tolerant: full-state snapshots (weights, Adam
//! moments, the serialisable [`TrainRng`], iteration and log) written
//! crash-safely let [`Trainer::resume`] continue a killed run bit-for-bit;
//! non-finite steps are skipped and, past a configurable streak, rolled
//! back to the last checkpoint with a learning-rate backoff
//! ([`RecoveryPolicy`]); a deterministic [`FaultPlan`] injects NaN steps,
//! crashes and on-disk corruption to prove all of it.
//!
//! ```no_run
//! use yollo_core::{Yollo, YolloConfig, Trainer, TrainConfig};
//! use yollo_synthref::{Dataset, DatasetConfig, DatasetKind, Split};
//!
//! let ds = Dataset::generate(DatasetConfig::standard(DatasetKind::SynthRef, 0));
//! let cfg = YolloConfig::for_dataset(&ds);
//! let mut model = Yollo::new(cfg, 42);
//! let log = Trainer::new(TrainConfig::default()).train(&mut model, &ds);
//! let acc = model.evaluate(&ds, Split::Val).acc_at(0.5);
//! println!("val ACC@0.5 = {acc:.3}, curve: {} points", log.points.len());
//! ```

mod batch;
mod config;
mod encoder;
mod fault;
mod head;
mod infer;
mod model;
mod rel2att;
mod rng;
mod train;
mod train_parallel;

pub use batch::{
    encode_query_strict, normalize_query, scene_hash, stack_images, QueryTooLong, RequestKey,
};
pub use config::{AttentionAblation, YolloConfig};
pub use encoder::FeatureEncoder;
pub use fault::{bitflip_file, truncate_file, FaultPlan, ReplicaFaultPlan};
pub use head::DetectionHead;
pub use infer::{EvalOutcome, GroundingPrediction};
pub use model::{LossParts, Yollo, YolloOutput};
pub use rel2att::Rel2AttLayer;
pub use rng::TrainRng;
pub use train::{
    RecoveryEvent, RecoveryPolicy, StepOutcome, TrainConfig, TrainLog, TrainOutcome, TrainPoint,
    TrainState, Trainer, TRAIN_STATE_VERSION,
};
