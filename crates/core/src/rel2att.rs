use crate::AttentionAblation;
use rand::Rng;
use yollo_nn::{Binder, Ffn, Module, ParamList, Parameter};
use yollo_tensor::{Element, Tensor, Var};

/// One Relation-to-Attention module (§3.2, Figure 2b).
///
/// Four two-layer FFNs map the image sequence `V` and query sequence `T`
/// into `⟨V₁,V₂⟩` and `⟨T₁,T₂⟩` (Eqs. 1–2); the concatenations
/// `X₁ = [V₁;T₁]`, `X₂ = [V₂;T₂]` form the dense relation map
/// `R = X₁X₂ᵀ/√d` (Eq. 3), whose quadrants are the self-attentions
/// (`R_vv`, `R_tt`) and co-attentions (`R_vt`, `R_tv`). Averaging `R` over
/// each axis and summing yields one attention value per element; the first
/// `m` entries weight `V` (Eq. 4) and the rest weight `T` (Eq. 5).
///
/// Implementation notes (documented deviations, see DESIGN.md):
/// * the mask applied to the features is the *softmax* of the raw attention
///   (the same distribution Eq. 6 supervises), rescaled so an indifferent
///   mask is the identity — attended cells end up ~m× brighter, the
///   "highlight" of Figure 3;
/// * a learnable scalar `gain` sharpens the attention logits (the raw
///   mean-pooled relation values start tiny, ~1/√d, and a plain softmax
///   over 54 cells would stay near-uniform for thousands of steps);
/// * outputs pass through a *per-sample* RMS normalisation. Per-position
///   LayerNorm would be exactly invariant to a per-position scalar gate
///   (it would silently delete the attention); per-sample RMS keeps the
///   cross-position contrast while preventing activation explosion in the
///   stacked modules;
/// * PAD query positions are zeroed inside the relation map so padding
///   never dilutes the attention statistics.
#[derive(Debug)]
pub struct Rel2AttLayer<E: Element = f64> {
    ffn_v1: Ffn<E>,
    ffn_v2: Ffn<E>,
    ffn_t1: Ffn<E>,
    ffn_t2: Ffn<E>,
    gain: Parameter<E>,
    d_rel: usize,
    ablation: AttentionAblation,
    /// §3.2: "in the last Rel2Att module we only compute the new image
    /// feature sequence Ṽ" — when false, `t` passes through untouched.
    compute_t: bool,
    /// Name used for trace spans (e.g. `rel2att.0`).
    trace_name: String,
}

/// Output of one Rel2Att layer.
pub(crate) struct Rel2AttOutput<'g, E: Element = f64> {
    /// Updated image sequence `Ṽ = [B, m, d]`.
    pub v: Var<'g, E>,
    /// Updated query sequence `T̃ = [B, n, d]`.
    pub t: Var<'g, E>,
    /// Raw (pre-softmax) image attention logits `att_v = [B, m]`, used by
    /// the attention loss (Eq. 6) and the Figure 5 visualisations.
    pub att_v: Var<'g, E>,
}

/// Per-sample RMS normalisation over positions *and* channels.
fn rms_norm<'g, E: Element>(x: Var<'g, E>) -> Var<'g, E> {
    let dims = x.dims();
    let mut keep = dims.clone();
    for k in keep.iter_mut().skip(1) {
        *k = 1;
    }
    let ms = x
        .square()
        .mean_axis(2)
        .mean_axis(1)
        .reshape(&keep)
        .add_scalar(1e-8)
        .sqrt();
    x.div(ms)
}

impl Rel2AttLayer {
    /// Builds one layer operating on `d_rel`-dimensional sequences.
    pub fn new(
        name: &str,
        d_rel: usize,
        hidden: usize,
        ablation: AttentionAblation,
        compute_t: bool,
        rng: &mut impl Rng,
    ) -> Self {
        Rel2AttLayer {
            ffn_v1: Ffn::new(&format!("{name}.v1"), d_rel, hidden, d_rel, rng),
            ffn_v2: Ffn::new(&format!("{name}.v2"), d_rel, hidden, d_rel, rng),
            ffn_t1: Ffn::new(&format!("{name}.t1"), d_rel, hidden, d_rel, rng),
            ffn_t2: Ffn::new(&format!("{name}.t2"), d_rel, hidden, d_rel, rng),
            gain: Parameter::new(format!("{name}.gain"), Tensor::from_vec(vec![2.0], &[1])),
            d_rel,
            ablation,
            compute_t,
            trace_name: name.to_string(),
        }
    }
}

impl<E: Element> Rel2AttLayer<E> {
    /// Name this layer reports in trace spans.
    pub(crate) fn trace_name(&self) -> &str {
        &self.trace_name
    }

    /// The quadrant mask for `k = m + n` elements: 1 where the relation is
    /// kept, 0 where the ablation wipes it out (Table 4: "we simply wipe
    /// out the corresponding blocks in the relation map").
    fn quadrant_mask(&self, m: usize, n: usize) -> Option<Tensor<E>> {
        let k = m + n;
        match self.ablation {
            AttentionAblation::Full => None,
            AttentionAblation::NoSelfAttention => Some(Tensor::from_fn(&[k, k], |flat| {
                let (i, j) = (flat / k, flat % k);
                if (i < m) == (j < m) {
                    E::ZERO
                } else {
                    E::ONE
                }
            })),
            AttentionAblation::NoCoAttention => Some(Tensor::from_fn(&[k, k], |flat| {
                let (i, j) = (flat / k, flat % k);
                if (i < m) == (j < m) {
                    E::ONE
                } else {
                    E::ZERO
                }
            })),
        }
    }

    /// Applies the module to `v = [B, m, d]`, `t = [B, n, d]`.
    ///
    /// `pad_mask` is `[B, n, 1]` with 0 at PAD positions (1 elsewhere);
    /// when given, padded words are excluded from the relation map.
    pub(crate) fn forward<'g>(
        &self,
        bind: &Binder<'g, E>,
        v: Var<'g, E>,
        t: Var<'g, E>,
        pad_mask: Option<&Tensor<E>>,
    ) -> Rel2AttOutput<'g, E> {
        let (b, m) = (v.dims()[0], v.dims()[1]);
        let n = t.dims()[1];
        let g = bind.graph();
        let v1 = self.ffn_v1.forward(bind, v);
        let v2 = self.ffn_v2.forward(bind, v);
        let mut t1 = self.ffn_t1.forward(bind, t);
        let mut t2 = self.ffn_t2.forward(bind, t);
        if let Some(mask) = pad_mask {
            let mv = g.leaf(mask.clone());
            t1 = t1.mul(mv);
            t2 = t2.mul(mv);
        }
        let x1 = Var::concat(&[v1, t1], 1); // [B, k, d]
        let x2 = Var::concat(&[v2, t2], 1);
        let mut rel = x1
            .matmul(x2.transpose())
            .mul_scalar(1.0 / (self.d_rel as f64).sqrt()); // [B, k, k]
        if let Some(mask) = self.quadrant_mask(m, n) {
            rel = rel.mul(g.leaf(mask));
        }
        // att₁ = mean over rows, att₂ = mean over columns, att = att₁ + att₂.
        // The means are taken *per quadrant* and summed: a flat mean over
        // all k columns would weight the query block by only n/k (~5%) and
        // drown the co-attention in visual self-attention; per-quadrant
        // means give R_v· and R_t· equal voice. The query-block mean is
        // PAD-aware (divides by the number of real tokens).
        let gain = bind.var(&self.gain);
        let inv_real = match pad_mask {
            Some(mask) => {
                let m2 = mask.reshape(&[b, n]);
                Tensor::from_fn(&[b, 1], |bi| {
                    let real: f64 = m2
                        .slice(0, bi, 1)
                        .as_slice()
                        .iter()
                        .map(|v| v.to_f64())
                        .sum();
                    E::from_f64(1.0 / real.max(1.0))
                })
            }
            None => Tensor::full(&[b, 1], E::from_f64(1.0 / n as f64)),
        };
        let inv_real = g.leaf(inv_real);
        let quad_means = |r: Var<'g, E>| -> Var<'g, E> {
            // r: [B, k, k]; mean over the V columns + pad-aware mean over
            // the T columns → [B, k]
            let v_mean = r.slice(2, 0, m).mean_axis(2);
            let t_mean = r.slice(2, m, n).sum_axis(2).mul(inv_real);
            v_mean.add(t_mean)
        };
        let att = (quad_means(rel).add(quad_means(rel.transpose()))).mul(gain); // [B, k]
        let att_v = att.slice(1, 0, m); // [B, m]
                                        // multiplicative attention (Eq. 4): softmax mask, identity-on-average
        let gate_v = att_v
            .softmax_lastdim()
            .mul_scalar(m as f64)
            .reshape(&[b, m, 1]);
        let v_out = rms_norm(v.mul(gate_v).add(v));
        let t_out = if self.compute_t {
            let att_t = att.slice(1, m, n); // [B, n]
            let gate_t = att_t
                .softmax_lastdim()
                .mul_scalar(n as f64)
                .reshape(&[b, n, 1]);
            let mut out = rms_norm(t.mul(gate_t).add(t));
            if let Some(mask) = pad_mask {
                out = out.mul(g.leaf(mask.clone()));
            }
            out
        } else {
            t // final module: T̃ is never consumed (§3.2)
        };
        Rel2AttOutput {
            v: v_out,
            t: t_out,
            att_v,
        }
    }

    /// This layer with every weight converted element-wise to dtype `F`.
    pub(crate) fn cast<F: Element>(&self) -> Rel2AttLayer<F> {
        Rel2AttLayer {
            ffn_v1: self.ffn_v1.cast(),
            ffn_v2: self.ffn_v2.cast(),
            ffn_t1: self.ffn_t1.cast(),
            ffn_t2: self.ffn_t2.cast(),
            gain: self.gain.cast(),
            d_rel: self.d_rel,
            ablation: self.ablation,
            compute_t: self.compute_t,
            trace_name: self.trace_name.clone(),
        }
    }
}

impl Module for Rel2AttLayer {
    fn parameters(&self) -> ParamList {
        let mut ps = self.ffn_v1.parameters();
        ps.extend(self.ffn_v2.parameters());
        ps.extend(self.ffn_t1.parameters());
        ps.extend(self.ffn_t2.parameters());
        ps.push(self.gain.clone());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    fn layer(ablation: AttentionAblation) -> Rel2AttLayer {
        let mut rng = StdRng::seed_from_u64(0);
        Rel2AttLayer::new("r", 16, 24, ablation, true, &mut rng)
    }

    fn inputs(g: &Graph) -> (Var<'_>, Var<'_>) {
        let mut rng = StdRng::seed_from_u64(1);
        (
            g.leaf(Tensor::randn(&[2, 6, 16], &mut rng)),
            g.leaf(Tensor::randn(&[2, 4, 16], &mut rng)),
        )
    }

    #[test]
    fn shapes_are_preserved() {
        let l = layer(AttentionAblation::Full);
        let g = Graph::new();
        let b = Binder::new(&g);
        let (v, t) = inputs(&g);
        let out = l.forward(&b, v, t, None);
        assert_eq!(out.v.dims(), vec![2, 6, 16]);
        assert_eq!(out.t.dims(), vec![2, 4, 16]);
        assert_eq!(out.att_v.dims(), vec![2, 6]);
    }

    #[test]
    fn gate_survives_normalisation() {
        // the attention gate must change the *relative* magnitude of
        // positions after normalisation (this is the regression test for
        // the LayerNorm bug: per-position normalisation deletes the gate)
        let l = layer(AttentionAblation::Full);
        let g = Graph::new();
        let b = Binder::new(&g);
        let (v, t) = inputs(&g);
        let out = l.forward(&b, v, t, None);
        let vin = v.value();
        let vout = out.v.value();
        // per-position norm ratios out/in must NOT all be equal
        let mut ratios = Vec::new();
        for p in 0..6 {
            let ni = vin.slice(1, p, 1).norm();
            let no = vout.slice(1, p, 1).norm();
            ratios.push(no / ni);
        }
        let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
            - ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1e-6, "gate was annihilated: ratios {ratios:?}");
    }

    #[test]
    fn no_co_attention_makes_image_path_query_invariant() {
        let l = layer(AttentionAblation::NoCoAttention);
        let g = Graph::new();
        let b = Binder::new(&g);
        let (v, t) = inputs(&g);
        let out1 = l.forward(&b, v, t, None);
        let mut rng = StdRng::seed_from_u64(99);
        let t2 = g.leaf(Tensor::randn(&[2, 4, 16], &mut rng));
        let out2 = l.forward(&b, v, t2, None);
        // with co-attention wiped, att_v cannot depend on the query
        assert!(out1.att_v.value().max_abs_diff(&out2.att_v.value()) < 1e-12);
        // sanity: the full model *does* depend on the query
        let lf = layer(AttentionAblation::Full);
        let o1 = lf.forward(&b, v, t, None);
        let o2 = lf.forward(&b, v, t2, None);
        assert!(o1.att_v.value().max_abs_diff(&o2.att_v.value()) > 1e-9);
    }

    #[test]
    fn no_self_attention_kills_vv_and_tt_blocks() {
        let l = layer(AttentionAblation::NoSelfAttention);
        let mask = l.quadrant_mask(3, 2).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(mask.at(&[i, j]), 0.0, "R_vv must be wiped");
            }
        }
        assert_eq!(mask.at(&[0, 4]), 1.0, "R_vt must be kept");
        assert_eq!(mask.at(&[4, 4]), 0.0, "R_tt must be wiped");
    }

    #[test]
    fn pad_mask_blocks_padding_influence() {
        let l = layer(AttentionAblation::Full);
        let g = Graph::new();
        let b = Binder::new(&g);
        let (v, _) = inputs(&g);
        // two queries identical in real tokens, different garbage in the
        // masked pad slots
        let mut rng = StdRng::seed_from_u64(5);
        let real = Tensor::randn(&[2, 2, 16], &mut rng);
        let pad_a = Tensor::zeros(&[2, 2, 16]);
        let pad_b = Tensor::randn(&[2, 2, 16], &mut rng);
        let ta = g.leaf(Tensor::concat(&[&real, &pad_a], 1));
        let tb = g.leaf(Tensor::concat(&[&real, &pad_b], 1));
        let mask = Tensor::from_fn(&[2, 4, 1], |flat| if flat % 4 < 2 { 1.0 } else { 0.0 });
        let oa = l.forward(&b, v, ta, Some(&mask));
        let ob = l.forward(&b, v, tb, Some(&mask));
        assert!(
            oa.att_v.value().max_abs_diff(&ob.att_v.value()) < 1e-12,
            "pad content leaked into the attention"
        );
        // padded output rows stay zero
        let t_out = oa.t.value();
        assert_eq!(t_out.slice(1, 2, 2).norm(), 0.0);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let l = layer(AttentionAblation::Full);
        let g = Graph::new();
        let b = Binder::new(&g);
        let (v, t) = inputs(&g);
        let out = l.forward(&b, v, t, None);
        (out.v.square().sum_all() + out.t.square().sum_all() + out.att_v.square().sum_all())
            .backward();
        b.harvest();
        for p in l.parameters() {
            assert!(p.grad_norm() > 0.0, "no grad for {}", p.name());
        }
    }

    #[test]
    fn rms_norm_controls_scale() {
        let g: Graph = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.leaf(Tensor::randn(&[2, 5, 8], &mut rng).scale(100.0));
        let y = rms_norm(x).value();
        let ms: f64 = y.as_slice().iter().map(|v| v * v).sum::<f64>() / y.numel() as f64;
        assert!((ms - 1.0).abs() < 1e-6, "mean square {ms}");
    }
}
