//! Deterministic fault injection for the training stack.
//!
//! A [`FaultPlan`] tells a [`crate::Trainer`] to poison specific steps with
//! non-finite losses/gradients or to "crash" (return early, as if the
//! process was killed) before specific iterations. Plans are either built
//! explicitly or derived from a seed ([`FaultPlan::random`]), so every
//! fault sequence is reproducible. The file corruptors
//! ([`truncate_file`], [`bitflip_file`]) simulate the on-disk half of a
//! crash: a checkpoint cut off mid-write or damaged by a flipped bit.
//!
//! Injections are *consumable*: each fires at most once per run, so a
//! rollback that replays an iteration does not re-trip the same fault
//! (which would otherwise pin the trainer in a recovery loop).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::TrainRng;
use rand::Rng;

/// A deterministic schedule of training faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    nan_loss: BTreeSet<usize>,
    crash_before: BTreeSet<usize>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds iterations whose loss and gradients will be poisoned with NaN.
    pub fn nan_loss_at(mut self, iters: impl IntoIterator<Item = usize>) -> Self {
        self.nan_loss.extend(iters);
        self
    }

    /// Adds a simulated process crash: the run returns early just before
    /// executing iteration `iter`.
    pub fn crash_before(mut self, iter: usize) -> Self {
        self.crash_before.insert(iter);
        self
    }

    /// A seed-derived plan: `nan_steps` poisoned iterations drawn uniformly
    /// from `2..=iterations`, all reproducible from `seed`.
    pub fn random(seed: u64, iterations: usize, nan_steps: usize) -> Self {
        let mut rng = TrainRng::seed_from_u64(seed ^ 0xFA17_FA17);
        let mut nan_loss = BTreeSet::new();
        while nan_loss.len() < nan_steps.min(iterations.saturating_sub(1)) {
            nan_loss.insert(rng.gen_range(2..=iterations.max(2)));
        }
        FaultPlan {
            nan_loss,
            crash_before: BTreeSet::new(),
        }
    }

    /// True when no faults remain to fire.
    pub fn is_empty(&self) -> bool {
        self.nan_loss.is_empty() && self.crash_before.is_empty()
    }

    /// Consumes a NaN-loss injection for `iter`, if one is scheduled.
    ///
    /// Public so that non-training harnesses (e.g. `yollo-serve`'s faulted
    /// inference workers) can reuse the same deterministic schedules; the
    /// trainer calls this internally.
    pub fn take_nan(&mut self, iter: usize) -> bool {
        self.nan_loss.remove(&iter)
    }

    /// Consumes a crash injection for `iter`, if one is scheduled (see
    /// [`FaultPlan::take_nan`] on visibility).
    pub fn take_crash(&mut self, iter: usize) -> bool {
        self.crash_before.remove(&iter)
    }
}

/// A deterministic schedule of *replica-level* serving faults.
///
/// Where [`FaultPlan`] poisons training steps, a `ReplicaFaultPlan`
/// describes how one serving replica misbehaves, in the four shapes a
/// router tier must survive:
///
/// * **crash** — the k-th request the replica processes panics its worker
///   ([`ReplicaFaultPlan::crash_at_request`]), or every request from the
///   k-th on does ([`ReplicaFaultPlan::crash_from`], `crash_from(1)` is a
///   crash loop);
/// * **hang** — during `[from_ns, until_ns)` windows the replica makes no
///   progress at all: queued requests sit until a deadline or the window
///   ends ([`ReplicaFaultPlan::hang_between`]);
/// * **slow** — batch service time is multiplied by a factor, backing up
///   the replica's queue ([`ReplicaFaultPlan::slow_by`]);
/// * **flap** — the *health signal* (not the data path) alternates up and
///   down with a fixed period, exercising circuit-breaker hysteresis
///   ([`ReplicaFaultPlan::flap`]).
///
/// Crash injections are consumable (each fires once, like [`FaultPlan`]);
/// hang / slow / flap are pure functions of the queried time, so a
/// virtual-clock schedule replays bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaFaultPlan {
    crash_at: BTreeSet<usize>,
    crash_from: Option<usize>,
    hang_windows: Vec<(u64, u64)>,
    slow_factor: f64,
    flap_period_ns: u64,
}

impl Default for ReplicaFaultPlan {
    fn default() -> Self {
        ReplicaFaultPlan {
            crash_at: BTreeSet::new(),
            crash_from: None,
            hang_windows: Vec::new(),
            slow_factor: 1.0,
            flap_period_ns: 0,
        }
    }
}

impl ReplicaFaultPlan {
    /// An empty plan (a healthy replica).
    pub fn new() -> Self {
        ReplicaFaultPlan::default()
    }

    /// The `k`-th request this replica processes (1-based) panics its
    /// worker. Consumable: fires at most once.
    pub fn crash_at_request(mut self, k: usize) -> Self {
        self.crash_at.insert(k);
        self
    }

    /// Every request from the `k`-th on (1-based) panics its worker —
    /// `crash_from(1)` is a crash-looping replica.
    pub fn crash_from(mut self, k: usize) -> Self {
        self.crash_from = Some(k);
        self
    }

    /// The replica makes no progress during `[from_ns, until_ns)`.
    ///
    /// # Panics
    /// Panics if `from_ns >= until_ns`.
    pub fn hang_between(mut self, from_ns: u64, until_ns: u64) -> Self {
        assert!(from_ns < until_ns, "empty hang window");
        self.hang_windows.push((from_ns, until_ns));
        self
    }

    /// Batch service time is multiplied by `factor` (≥ 1 slows the
    /// replica down).
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn slow_by(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slow factor must be finite and positive"
        );
        self.slow_factor = factor;
        self
    }

    /// The health signal flaps: down during every odd `period_ns` interval
    /// (`[p, 2p)`, `[3p, 4p)`, …), up otherwise. The data path is
    /// unaffected — only probes observe the flap.
    pub fn flap(mut self, period_ns: u64) -> Self {
        self.flap_period_ns = period_ns;
        self
    }

    /// Consumes a crash injection for the `request`-th processed request
    /// (1-based), if one is scheduled.
    pub fn take_crash_request(&mut self, request: usize) -> bool {
        if self.crash_at.remove(&request) {
            return true;
        }
        self.crash_from.is_some_and(|k| request >= k)
    }

    /// True while the replica is inside a hang window.
    pub fn is_hung_at(&self, now_ns: u64) -> bool {
        self.hung_until(now_ns).is_some()
    }

    /// The end of the hang window containing `now_ns`, if any. Windows may
    /// overlap; the latest end wins.
    pub fn hung_until(&self, now_ns: u64) -> Option<u64> {
        self.hang_windows
            .iter()
            .filter(|&&(from, until)| (from..until).contains(&now_ns))
            .map(|&(_, until)| until)
            .max()
    }

    /// The batch service-time multiplier (1.0 = nominal).
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }

    /// True while the flapping health signal reads "down".
    pub fn is_flapped_down(&self, now_ns: u64) -> bool {
        self.flap_period_ns > 0 && (now_ns / self.flap_period_ns) % 2 == 1
    }

    /// True when the plan injects nothing (crash injections may have been
    /// consumed; time-based faults count as long as they are configured).
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_empty()
            && self.crash_from.is_none()
            && self.hang_windows.is_empty()
            && self.slow_factor == 1.0
            && self.flap_period_ns == 0
    }
}

/// Truncates the file at `path` to `keep_fraction` of its length (clamped
/// to `[0, 1]`), simulating a write cut off by a crash. Returns the new
/// length.
///
/// # Errors
/// Returns any I/O error from reading or writing the file.
pub fn truncate_file(path: impl AsRef<Path>, keep_fraction: f64) -> io::Result<u64> {
    let path = path.as_ref();
    let len = fs::metadata(path)?.len();
    let keep = (len as f64 * keep_fraction.clamp(0.0, 1.0)) as u64;
    let bytes = fs::read(path)?;
    fs::write(path, &bytes[..keep as usize])?;
    Ok(keep)
}

/// Flips one seed-chosen bit in the file at `path`, simulating silent
/// storage corruption. Returns the byte offset that was damaged.
///
/// # Errors
/// Returns any I/O error, or [`io::ErrorKind::InvalidData`] for an empty
/// file (nothing to corrupt).
pub fn bitflip_file(path: impl AsRef<Path>, seed: u64) -> io::Result<u64> {
    let path = path.as_ref();
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cannot corrupt an empty file",
        ));
    }
    let mut rng = TrainRng::seed_from_u64(seed ^ 0xB17_F11B);
    let offset = rng.gen_range(0..bytes.len());
    let bit = rng.gen_range(0..8u32);
    bytes[offset] ^= 1 << bit;
    fs::write(path, &bytes)?;
    Ok(offset as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_once() {
        let mut plan = FaultPlan::new().nan_loss_at([3, 5]).crash_before(7);
        assert!(!plan.take_nan(2));
        assert!(plan.take_nan(3));
        assert!(!plan.take_nan(3), "nan injection must be consumable");
        assert!(plan.take_crash(7));
        assert!(!plan.take_crash(7), "crash injection must be consumable");
        assert!(plan.take_nan(5));
        assert!(plan.is_empty());
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(9, 100, 4);
        let b = FaultPlan::random(9, 100, 4);
        let c = FaultPlan::random(10, 100, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.nan_loss.len(), 4);
        assert!(a.nan_loss.iter().all(|&i| (2..=100).contains(&i)));
    }

    #[test]
    fn replica_crashes_fire_once_but_crash_loops_persist() {
        let mut plan = ReplicaFaultPlan::new().crash_at_request(3);
        assert!(!plan.take_crash_request(2));
        assert!(plan.take_crash_request(3));
        assert!(!plan.take_crash_request(3), "crash is consumable");
        assert!(plan.is_empty());

        let mut looping = ReplicaFaultPlan::new().crash_from(2);
        assert!(!looping.take_crash_request(1));
        assert!(looping.take_crash_request(2));
        assert!(looping.take_crash_request(7), "crash loop never stops");
        assert!(!looping.is_empty());
    }

    #[test]
    fn hangs_slow_and_flap_are_pure_functions_of_time() {
        let plan = ReplicaFaultPlan::new()
            .hang_between(100, 200)
            .hang_between(150, 300)
            .slow_by(4.0)
            .flap(1_000);
        assert!(!plan.is_hung_at(99));
        assert_eq!(plan.hung_until(100), Some(200));
        assert_eq!(plan.hung_until(160), Some(300), "overlap: latest end");
        assert_eq!(plan.hung_until(299), Some(300));
        assert!(!plan.is_hung_at(300), "window end is exclusive");
        assert_eq!(plan.slow_factor(), 4.0);
        assert!(!plan.is_flapped_down(999), "first period is up");
        assert!(plan.is_flapped_down(1_000));
        assert!(plan.is_flapped_down(1_999));
        assert!(!plan.is_flapped_down(2_000), "flap recovers");
        assert!(ReplicaFaultPlan::new().is_empty());
    }

    #[test]
    fn corruptors_damage_files_deterministically() {
        let dir = std::env::temp_dir().join(format!("yollo_fault_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let original: Vec<u8> = (0..=255).collect();
        fs::write(&path, &original).unwrap();

        let off1 = bitflip_file(&path, 5).unwrap();
        let damaged = fs::read(&path).unwrap();
        assert_eq!(damaged.len(), original.len());
        let diffs: Vec<usize> = damaged
            .iter()
            .zip(&original)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![off1 as usize], "exactly one byte flipped");
        // same seed, same offset
        fs::write(&path, &original).unwrap();
        assert_eq!(bitflip_file(&path, 5).unwrap(), off1);

        let kept = truncate_file(&path, 0.5).unwrap();
        assert_eq!(kept, 128);
        assert_eq!(fs::read(&path).unwrap().len(), 128);
        fs::remove_dir_all(dir).ok();
    }
}
