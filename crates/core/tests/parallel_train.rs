//! Data-parallel trainer determinism: for a fixed `num_shards`, training is
//! bit-identical no matter how many worker threads service the shards, and
//! the PR-2 crash/resume bit-equality guarantee carries over to the
//! parallel trainer.

use std::path::PathBuf;

use yollo_core::{FaultPlan, TrainConfig, TrainLog, Trainer, Yollo, YolloConfig};
use yollo_nn::Module;
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind};

fn tiny_setup() -> (Yollo, Dataset) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let cfg = YolloConfig {
        d_rel: 12,
        ffn_hidden: 16,
        n_rel2att: 1,
        ..YolloConfig::for_dataset(&ds)
    };
    let mut m = Yollo::new(cfg, 1);
    m.set_vocab(ds.build_vocab());
    (m, ds)
}

fn cfg(num_shards: usize) -> TrainConfig {
    TrainConfig {
        iterations: 6,
        eval_every: 3,
        num_shards,
        ..TrainConfig::quick() // batch 4, no pre-training
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yollo_pt_{}_{}", name, std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Every weight of every parameter, as raw bits.
fn weight_bits(model: &Yollo) -> Vec<Vec<u64>> {
    model
        .parameters()
        .iter()
        .map(|p| p.value().as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn assert_logs_bit_equal(a: &TrainLog, b: &TrainLog, what: &str) {
    assert_eq!(a.points.len(), b.points.len(), "{what}: point counts");
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(
            x.loss.total.to_bits(),
            y.loss.total.to_bits(),
            "{what}: loss diverged at iteration {}",
            x.iteration
        );
        assert_eq!(
            x.val_acc.map(f64::to_bits),
            y.val_acc.map(f64::to_bits),
            "{what}: val_acc diverged at iteration {}",
            x.iteration
        );
    }
}

/// The determinism contract: with `num_shards` fixed, 1, 2 and 4 worker
/// threads produce bit-identical weights, gradients and training curves.
#[test]
fn worker_thread_count_never_changes_the_bits() {
    let run = |workers: usize| {
        let (mut model, ds) = tiny_setup();
        let log = Trainer::new(cfg(4))
            .with_worker_threads(workers)
            .train(&mut model, &ds);
        (weight_bits(&model), log)
    };
    let (w1, log1) = run(1);
    let (w2, log2) = run(2);
    let (w4, log4) = run(4);
    assert_eq!(w1, w2, "1 vs 2 worker threads");
    assert_eq!(w1, w4, "1 vs 4 worker threads");
    assert_logs_bit_equal(&log1, &log2, "1 vs 2 worker threads");
    assert_logs_bit_equal(&log1, &log4, "1 vs 4 worker threads");
}

/// Per-step gradients are bit-identical across worker-thread counts: after
/// exactly one optimiser step (whose input is the reduced gradient), the
/// weights agree bit-for-bit at 1, 2 and 4 threads.
#[test]
fn single_step_gradients_are_bitwise_thread_count_independent() {
    let one_step = |workers: usize| {
        let (mut model, ds) = tiny_setup();
        let mut c = cfg(4);
        c.iterations = 1;
        c.eval_every = 0;
        Trainer::new(c)
            .with_worker_threads(workers)
            .train(&mut model, &ds);
        weight_bits(&model)
    };
    let (g1, g2, g4) = (one_step(1), one_step(2), one_step(4));
    assert_eq!(g1, g2, "reduced gradient diverged at 2 threads");
    assert_eq!(g1, g4, "reduced gradient diverged at 4 threads");
}

/// The parallel trainer still trains: loss drops over a short run.
#[test]
fn parallel_training_reduces_loss() {
    let (mut model, ds) = tiny_setup();
    let log = Trainer::new(TrainConfig {
        iterations: 30,
        eval_every: 0,
        num_shards: 2,
        batch_size: 4,
        word2vec_init: false,
        pretrain_backbone_steps: 0,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);
    let (early, late) = (log.early_loss(5).unwrap(), log.late_loss(5).unwrap());
    assert!(late < early, "loss did not drop: {early} -> {late}");
}

/// More shards than samples: the shard count clamps to the batch size
/// instead of scheduling empty shards.
#[test]
fn shard_count_clamps_to_batch_size() {
    let (mut model, ds) = tiny_setup();
    let mut c = cfg(16); // batch_size is 4
    c.iterations = 2;
    c.eval_every = 0;
    let log = Trainer::new(c).train(&mut model, &ds);
    assert_eq!(log.points.len(), 2);
    assert!(log.points.iter().all(|p| p.loss.total.is_finite()));
}

/// PR-2 guarantee under the parallel trainer: a run crashed mid-way and
/// resumed from its checkpoint is bit-identical to one that never stopped —
/// even when the resumed run uses a different worker-thread count.
#[test]
fn parallel_resume_after_crash_is_bit_identical() {
    let dir = fresh_dir("resume");
    let config = TrainConfig {
        checkpoint_every: 2,
        ..cfg(2)
    };

    let (mut uninterrupted, ds) = tiny_setup();
    let full = Trainer::new(config)
        .with_worker_threads(2)
        .train(&mut uninterrupted, &ds);

    let (mut crashed, ds2) = tiny_setup();
    let outcome = Trainer::new(config)
        .with_fault_plan(FaultPlan::new().crash_before(5))
        .with_worker_threads(2)
        .train_checkpointed(&mut crashed, &ds2, &dir)
        .unwrap();
    assert_eq!(outcome.interrupted_at, Some(5));

    // resume with a different thread count: bits must not change
    let (mut resumed, ds3) = tiny_setup();
    let resumed_outcome = Trainer::new(config)
        .with_worker_threads(1)
        .resume(&mut resumed, &ds3, &dir)
        .unwrap();
    assert_eq!(resumed_outcome.resumed_from, Some(4));
    assert_logs_bit_equal(&full, &resumed_outcome.log, "resume vs uninterrupted");
    assert_eq!(
        weight_bits(&uninterrupted),
        weight_bits(&resumed),
        "resumed weights diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming under a different `num_shards` is refused: sharding is part of
/// the floating-point trajectory, so continuing silently would diverge.
#[test]
fn resume_rejects_shard_count_change() {
    let dir = fresh_dir("reject");
    let (mut model, ds) = tiny_setup();
    Trainer::new(TrainConfig {
        checkpoint_every: 2,
        ..cfg(2)
    })
    .train_checkpointed(&mut model, &ds, &dir)
    .unwrap();

    let (mut other, ds2) = tiny_setup();
    let err = Trainer::new(cfg(4))
        .resume(&mut other, &ds2, &dir)
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("num_shards"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
