//! Fault-tolerance integration tests: crash/resume bit-equality, corrupted
//! checkpoint fallback, non-finite step skipping and rollback recovery.

use std::path::PathBuf;

use yollo_core::{
    truncate_file, FaultPlan, StepOutcome, TrainConfig, TrainLog, TrainState, Trainer, Yollo,
    YolloConfig,
};
use yollo_nn::{CheckpointStore, Module};
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind};

fn tiny_setup() -> (Yollo, Dataset) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let cfg = YolloConfig {
        d_rel: 12,
        ffn_hidden: 16,
        n_rel2att: 1,
        ..YolloConfig::for_dataset(&ds)
    };
    let mut m = Yollo::new(cfg, 1);
    m.set_vocab(ds.build_vocab());
    (m, ds)
}

fn cfg() -> TrainConfig {
    TrainConfig {
        checkpoint_every: 4,
        ..TrainConfig::quick() // 12 iters, eval every 6, no pre-training
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yollo_ft_{}_{}", name, std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bitwise comparison of two training curves (loss f64s compared by bits,
/// so `0.0 == -0.0` or NaN quirks cannot mask a divergence).
fn assert_logs_bit_equal(a: &TrainLog, b: &TrainLog) {
    assert_eq!(a.points.len(), b.points.len(), "point counts differ");
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.iteration, y.iteration);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(
            x.loss.total.to_bits(),
            y.loss.total.to_bits(),
            "loss diverged at iteration {}",
            x.iteration
        );
        assert_eq!(
            x.val_acc.map(f64::to_bits),
            y.val_acc.map(f64::to_bits),
            "val_acc diverged at iteration {}",
            x.iteration
        );
    }
    assert_eq!(a.val_curve(), b.val_curve());
}

fn assert_params_bit_equal(a: &Yollo, b: &Yollo) {
    for (p, q) in a.parameters().iter().zip(&b.parameters()) {
        assert_eq!(p.name(), q.name());
        assert_eq!(p.value(), q.value(), "weights diverged in {}", p.name());
    }
}

#[test]
fn resume_after_crash_is_bit_identical_to_uninterrupted_run() {
    let dir_a = fresh_dir("uninterrupted");
    let dir_b = fresh_dir("crashed");

    let (mut model_a, ds) = tiny_setup();
    let full = Trainer::new(cfg())
        .train_checkpointed(&mut model_a, &ds, &dir_a)
        .unwrap();
    assert_eq!(full.interrupted_at, None);

    // same run, killed just before iteration 7 (past the it=4 checkpoint)
    let (mut model_b, _) = tiny_setup();
    let crashed = Trainer::new(cfg())
        .with_fault_plan(FaultPlan::new().crash_before(7))
        .train_checkpointed(&mut model_b, &ds, &dir_b)
        .unwrap();
    assert_eq!(crashed.interrupted_at, Some(7));

    // resume into a *fresh* model: everything must come from the snapshot
    let (mut model_c, _) = tiny_setup();
    let resumed = Trainer::new(cfg())
        .resume(&mut model_c, &ds, &dir_b)
        .unwrap();
    assert_eq!(resumed.resumed_from, Some(4));
    assert_eq!(resumed.interrupted_at, None);

    assert_logs_bit_equal(&full.log, &resumed.log);
    assert_params_bit_equal(&model_a, &model_c);
}

#[test]
fn resume_falls_back_to_older_checkpoint_when_newest_is_truncated() {
    let dir_a = fresh_dir("trunc_ref");
    let dir_b = fresh_dir("trunc_victim");

    let (mut model_a, ds) = tiny_setup();
    let full = Trainer::new(cfg())
        .train_checkpointed(&mut model_a, &ds, &dir_a)
        .unwrap();

    let (mut model_b, _) = tiny_setup();
    Trainer::new(cfg())
        .with_fault_plan(FaultPlan::new().crash_before(11))
        .train_checkpointed(&mut model_b, &ds, &dir_b)
        .unwrap();

    // cut the newest checkpoint (it=8) in half, as a mid-write crash would
    let store = CheckpointStore::open(&dir_b, cfg().keep_last).unwrap();
    let (newest, path) = store.entries().unwrap().into_iter().last().unwrap();
    assert_eq!(newest, 8);
    truncate_file(&path, 0.5).unwrap();

    let (mut model_c, _) = tiny_setup();
    let resumed = Trainer::new(cfg())
        .resume(&mut model_c, &ds, &dir_b)
        .unwrap();
    assert_eq!(
        resumed.resumed_from,
        Some(4),
        "must skip the damaged it=8 file"
    );

    assert_logs_bit_equal(&full.log, &resumed.log);
    assert_params_bit_equal(&model_a, &model_c);
}

#[test]
fn extending_a_finished_run_matches_one_long_run() {
    // train(2N) == train(N) -> save -> load -> train(N)
    let long_cfg = cfg();
    let short_cfg = TrainConfig {
        iterations: 6,
        ..cfg()
    };
    let dir = fresh_dir("extend");

    let (mut model_long, ds) = tiny_setup();
    let long = Trainer::new(long_cfg).train(&mut model_long, &ds);

    let (mut model_short, _) = tiny_setup();
    Trainer::new(short_cfg)
        .train_checkpointed(&mut model_short, &ds, &dir)
        .unwrap();
    let (mut model_ext, _) = tiny_setup();
    let extended = Trainer::new(long_cfg)
        .resume(&mut model_ext, &ds, &dir)
        .unwrap();
    assert_eq!(extended.resumed_from, Some(6));

    assert_logs_bit_equal(&long, &extended.log);
    assert_params_bit_equal(&model_long, &model_ext);
}

#[test]
fn nan_step_is_skipped_and_leaves_weights_and_moments_untouched() {
    // run A stops at iteration 4; run B does one extra step that is poisoned
    // with NaN. The skipped step must leave weights and Adam moments exactly
    // as they were after iteration 4.
    let dir_a = fresh_dir("nan_ref");
    let dir_b = fresh_dir("nan_poisoned");
    let base = TrainConfig {
        checkpoint_every: 0, // final snapshot only
        eval_every: 0,
        ..cfg()
    };

    let (mut model_a, ds) = tiny_setup();
    Trainer::new(TrainConfig {
        iterations: 4,
        ..base
    })
    .train_checkpointed(&mut model_a, &ds, &dir_a)
    .unwrap();

    let (mut model_b, _) = tiny_setup();
    let poisoned = Trainer::new(TrainConfig {
        iterations: 5,
        ..base
    })
    .with_fault_plan(FaultPlan::new().nan_loss_at([5]))
    .train_checkpointed(&mut model_b, &ds, &dir_b)
    .unwrap();

    let point = poisoned.log.points.last().unwrap();
    assert_eq!(point.iteration, 5);
    assert_eq!(point.outcome, StepOutcome::Skipped);
    assert_eq!(point.loss.total, 0.0, "skipped steps log zeroed parts");
    assert_eq!(
        poisoned.log.late_loss(1),
        Some(poisoned.log.points[3].loss.total),
        "late_loss must ignore the skipped point"
    );

    let load = |dir: &PathBuf| -> TrainState {
        let store = CheckpointStore::open(dir, 3).unwrap();
        let (_, payload) = store.load_latest_valid().unwrap().unwrap();
        serde_json::from_slice(&payload).unwrap()
    };
    let (a, b) = (load(&dir_a), load(&dir_b));
    assert_eq!(
        a.params, b.params,
        "weights must be untouched by a NaN step"
    );
    assert_eq!(
        a.optimizer, b.optimizer,
        "Adam moments and step count must be untouched by a NaN step"
    );
    assert_ne!(a.rng, b.rng, "the extra iteration does consume the rng");
}

#[test]
fn bad_step_streak_rolls_back_to_checkpoint_with_lr_backoff() {
    let dir = fresh_dir("rollback");
    let c = cfg(); // max_bad_steps = 3, lr_backoff = 0.5, checkpoints at 4, 8, 12
    let (mut model, ds) = tiny_setup();
    let out = Trainer::new(c)
        .with_fault_plan(FaultPlan::new().nan_loss_at([6, 7, 8]))
        .train_checkpointed(&mut model, &ds, &dir)
        .unwrap();

    assert_eq!(out.interrupted_at, None, "run must complete after recovery");
    assert_eq!(out.log.recoveries.len(), 1);
    let rec = out.log.recoveries[0];
    assert_eq!(rec.at_iteration, 8, "streak trips on the third bad step");
    assert_eq!(rec.restored_iteration, 4, "rolls back to the it=4 snapshot");
    assert_eq!(rec.lr, c.lr * c.recovery.lr_backoff);

    // the rewound-and-replayed curve has no skipped points left
    assert_eq!(out.log.points.len(), c.iterations);
    assert!(out
        .log
        .points
        .iter()
        .all(|p| p.outcome == StepOutcome::Applied && p.loss.total.is_finite()));
}

#[test]
fn resume_rejects_incompatible_config() {
    let dir = fresh_dir("mismatch");
    let (mut model, ds) = tiny_setup();
    Trainer::new(cfg())
        .train_checkpointed(&mut model, &ds, &dir)
        .unwrap();

    let (mut other, _) = tiny_setup();
    let err = Trainer::new(TrainConfig { seed: 99, ..cfg() })
        .resume(&mut other, &ds, &dir)
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("seed"), "unexpected error: {err}");
}

#[test]
fn resume_with_no_checkpoints_starts_fresh() {
    let dir = fresh_dir("fresh");
    let (mut model_a, ds) = tiny_setup();
    let plain = Trainer::new(cfg()).train(&mut model_a, &ds);

    let (mut model_b, _) = tiny_setup();
    std::fs::remove_dir_all(&dir).ok();
    let resumed = Trainer::new(cfg()).resume(&mut model_b, &ds, &dir).unwrap();
    assert_eq!(resumed.resumed_from, None);
    assert_logs_bit_equal(&plain, &resumed.log);
}
