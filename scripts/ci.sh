#!/usr/bin/env bash
# CI gate: tier-1 build + tests, then style/lint on the crates that own the
# compute backend. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q --workspace

echo "== rustfmt (tensor, nn) =="
cargo fmt --check -p yollo-tensor -p yollo-nn

echo "== clippy -D warnings (tensor, nn) =="
cargo clippy -p yollo-tensor -p yollo-nn --all-targets -- -D warnings

echo "ci.sh: all gates passed"
