#!/usr/bin/env bash
# CI gate: tier-1 build + tests, then style/lint on the crates that own the
# compute backend and the fault-tolerant training stack. Run from anywhere;
# operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q --workspace

echo "== fault-injection suite =="
# crash/resume bit-equality, corrupted-checkpoint fallback, NaN skip and
# rollback recovery — run explicitly so a filtered-out suite fails loudly
cargo test -q -p yollo-core --test fault_tolerance

echo "== no ignored recovery tests =="
# recovery tests must never be parked behind #[ignore]
if grep -rn --include='*.rs' '#\[ignore' crates/core/tests crates/core/src/fault.rs crates/core/src/train.rs; then
    echo "error: ignored test(s) in the fault-tolerance suite" >&2
    exit 1
fi

echo "== parallel-trainer determinism suite =="
# worker-thread-count bit-equality, crash/resume under the shard pool and
# num_shards resume rejection — run explicitly so a filtered-out suite
# fails loudly
cargo test -q -p yollo-core --test parallel_train

echo "== train-speed smoke =="
YOLLO_SCALE=tiny cargo run --release -q -p yollo-bench --bin exp_train_speed
python3 - <<'EOF'
import json
with open("BENCH_train.json") as f:
    bench = json.load(f)
assert bench["rows"], "at least one timed configuration"
modes = {r["mode"] for r in bench["rows"]}
assert modes == {"serial", "parallel"}, f"unexpected modes: {modes}"
for row in bench["rows"]:
    assert row["steps_per_s"] > 0, "throughput must be nonzero"
    assert row["ns_per_step"] > 0
det = bench["determinism"]
assert det["weights_bitwise_equal"] is True, "worker threads changed the bits"
assert det["worker_threads"] == [1, 2, 4]
print("BENCH_train.json ok:",
      ", ".join(f"{r['mode']}/w{r['worker_threads']}->{r['steps_per_s']:.2f} steps/s"
                for r in bench["rows"]))
EOF
scripts/bench_check BENCH_train.json baselines/tiny/BENCH_train.json

echo "== trainer: no stray printing in core =="
# training progress goes through the log/obs layers, never raw stdout
# (doc-comment examples are exempt)
if grep -rn --include='*.rs' 'println!' crates/core/src | grep -vE ':\s*//'; then
    echo "error: println! in crates/core/src" >&2
    exit 1
fi

echo "== dtype: cross-dtype equivalence and f32 gradcheck suites =="
# the f32 fast path against the f64 oracle: γ-bounded kernel drift
# (backend_equivalence) and the looser-tolerance f32 gradchecks plus the
# element/cast unit tests live in the tensor lib suite — run both
# explicitly so a filtered-out suite fails loudly
cargo test -q -p yollo-tensor --test backend_equivalence
cargo test -q -p yollo-tensor --lib
# the f64-vs-f32 serve IoU-tolerance comparison rides in the serve
# integration suite (runs below) — make sure it's still present
if ! grep -q 'f32_backend_serves_within_iou_tolerance_of_f64' crates/serve/tests/integration.rs; then
    echo "error: serve f32-vs-f64 tolerance test is missing" >&2
    exit 1
fi

echo "== dtype: tensor-speed smoke (both instantiations) =="
YOLLO_TENSOR_REPS=1 cargo run --release -q -p yollo-bench --bin exp_tensor_speed
python3 - <<'EOF'
import json
with open("BENCH_tensor.json") as f:
    rows = json.load(f)
dtypes = {r["dtype"] for r in rows}
assert dtypes == {"f64", "f32"}, f"unexpected dtypes: {dtypes}"
by_dtype = {d: {(r["op"], r["shape"], r["threads"]) for r in rows if r["dtype"] == d}
            for d in dtypes}
assert by_dtype["f64"] == by_dtype["f32"], (
    "f32 suite must cover exactly the ops/shapes the f64 suite covers: "
    f"{by_dtype['f64'] ^ by_dtype['f32']}")
for r in rows:
    assert r["ns_per_iter"] > 0, f"non-positive timing: {r}"
print(f"BENCH_tensor.json ok: {len(rows)} rows, "
      f"{len(by_dtype['f64'])} (op, shape, threads) cells per dtype")
EOF
scripts/bench_check BENCH_tensor.json baselines/tiny/BENCH_tensor.json

echo "== serve: batching, fault and determinism suites =="
# virtual-clock flush exactness, backpressure, cache identity, worker-panic
# isolation and the 100-run determinism fingerprint — run explicitly so a
# filtered-out suite fails loudly
cargo test -q -p yollo-serve

echo "== serve: router chaos gate =="
# fault-injected multi-replica routing: crash/hang/slow/flap schedules,
# exactly-one-terminal-response, availability under a crash-looping
# replica, hedging, degraded cache-only mode, the 100-run scheduling
# fingerprint, and the consistent-hash ring invariants — run explicitly so
# a filtered-out suite fails loudly
cargo test -q -p yollo-serve --test router
cargo test -q -p yollo-serve --test ring_props

echo "== serve: load-test smoke + trace gate =="
# exp_serve validates its own flight/event reconciliation and span-chain
# completeness (it aborts otherwise); the trace gate re-derives the chain
# check from the written Chrome trace alone, so the artifact a human
# would open in Perfetto is itself proven complete
SERVE_TRACE=target/experiments/trace_serve_ci.json
YOLLO_SCALE=tiny YOLLO_TRACE_PATH="$SERVE_TRACE" cargo run --release -q -p yollo-bench --bin exp_serve
python3 - "$SERVE_TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = [e for e in json.load(f) if e.get("ph") == "X"]
by_trace = {}
for e in events:
    t = e["args"].get("trace", 0)
    if t:
        by_trace.setdefault(t, []).append(e)
with open("BENCH_serve.json") as f:
    slo = json.load(f)["slo"]
roots = [e for e in events if e["name"] == "router.request"]
assert len(roots) == slo["requests"], (
    f"{len(roots)} router.request roots for {slo['requests']} requests")
for root in roots:
    trace = root["args"]["trace"]
    evs = by_trace[trace]
    ids = {e["args"]["id"] for e in evs}
    # causal completeness from the artifact alone: every span's parent
    # resolves inside its trace, and the root's declared attempt count
    # matches the attempt spans actually present
    for e in evs:
        p = e["args"]["parent"]
        assert p == 0 or p in ids, (
            f"trace {trace}: span {e['args']['id']} has dangling parent {p}")
    attempts = sum(1 for e in evs if e["name"] == "router.attempt")
    assert attempts == root["args"]["attempts"], (
        f"trace {trace}: root declares {root['args']['attempts']} attempts, "
        f"found {attempts}")
    assert "outcome" in root["args"], f"trace {trace}: root missing outcome"
print(f"trace gate ok: {len(roots)} admission->outcome chains, "
      f"{len(events)} events in {sys.argv[1]}")
EOF
python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    bench = json.load(f)
assert bench["serial"]["throughput_rps"] > 0, "serial throughput must be nonzero"
assert bench["loads"], "at least one offered load"
for load in bench["loads"]:
    assert load["throughput_rps"] > 0, "batched throughput must be nonzero"
    assert load["requests"] > 0 and load["worker_panics"] == 0
# Router tier: 1/2/4 replicas, each measured healthy and with replica 0
# crash-looping. Healthy serving must not drop anything; with >= 2 replicas
# one crash-looping replica must keep availability at >= 99%.
router = bench["router"]
cells = {(r["replicas"], r["condition"]) for r in router}
want = {(n, c) for n in (1, 2, 4) for c in ("healthy", "crash-loop")}
assert cells == want, f"router grid incomplete: {want - cells}"
for row in router:
    assert row["throughput_rps"] > 0, f"router throughput must be nonzero: {row}"
    assert row["latency_ns"]["p99"] > 0, f"router p99 missing: {row}"
    if row["condition"] == "healthy":
        assert row["availability"] >= 0.999, f"healthy router dropped requests: {row}"
        assert row["worker_panics"] == 0, f"healthy run must not panic: {row}"
    elif row["replicas"] >= 2:
        assert row["availability"] >= 0.99, (
            f"one crash-looping replica out of {row['replicas']} must keep "
            f"availability >= 0.99: {row}")
print("BENCH_serve.json ok:",
      ", ".join(f"{l['offered_load']}/cache-{l['cache']}->{l['throughput_rps']:.1f} rps"
                for l in bench["loads"]))
print("router ok:",
      ", ".join(f"x{r['replicas']}/{r['condition']}->{r['availability']:.3f}"
                for r in sorted(router, key=lambda r: (r['replicas'], r['condition']))))
# SLO accounting: the deterministic traced chaos run must answer
# everything it accepts, split latency into queue vs service, and agree
# with the span-chain count the trace gate just verified
slo = bench["slo"]
assert slo["requests"] > 0 and slo["accepted"] > 0
assert slo["availability"] >= 0.99, f"chaos run lost accepted requests: {slo}"
assert slo["trace"]["request_chains"] == slo["requests"]
bd = slo["latency_breakdown_ns"]
for part in ("total", "queue", "service"):
    assert bd[part]["p50"] <= bd[part]["p95"] <= bd[part]["p99"], (
        f"percentiles must be monotone: {part} {bd[part]}")
assert bd["total"]["p95"] >= bd["queue"]["p50"], "total latency includes queue wait"
print(f"slo ok: availability {slo['availability']:.3f}, "
      f"retry amp {slo['retry_amplification']:.2f}, "
      f"p95 total/queue/service {bd['total']['p95']}/{bd['queue']['p95']}"
      f"/{bd['service']['p95']} ns")
EOF
scripts/bench_check BENCH_serve.json baselines/tiny/BENCH_serve.json

echo "== serve: no stray printing in the serving crate =="
# the serve crate (batcher, router, health machinery) must never write to
# stdout or stderr; responses travel on channels, telemetry through obs
if grep -rnE --include='*.rs' '\b(println!|eprintln!|print!|eprint!)' crates/serve/src | grep -vE ':\s*//'; then
    echo "error: stray printing in crates/serve/src" >&2
    exit 1
fi

echo "== tensor/nn: no stray printing in the dtype-generic backend =="
# library crates never write to stdout (doc-comment examples are exempt;
# bench binaries under crates/bench print by design)
if grep -rn --include='*.rs' 'println!' crates/tensor/src crates/nn/src | grep -vE ':\s*//'; then
    echo "error: println! in crates/tensor/src or crates/nn/src" >&2
    exit 1
fi

echo "== obs: compiled-out feature builds =="
# the telemetry crate must work with its probes compiled out, and the
# tensor crate must pass its overhead guard in that configuration
cargo test -q -p yollo-obs --no-default-features
cargo test -q -p yollo-tensor --no-default-features

echo "== obs: profiling smoke =="
TRACE_PATH=target/experiments/trace_ci.json
YOLLO_SCALE=tiny YOLLO_TRACE_PATH="$TRACE_PATH" cargo run --release -q -p yollo-bench --bin exp_profile
python3 -m json.tool BENCH_obs.json > /dev/null
python3 -m json.tool "$TRACE_PATH" > /dev/null
scripts/bench_check BENCH_obs.json baselines/tiny/BENCH_obs.json

echo "== obs: serving trace-validation mode =="
# the same binary in YOLLO_PROFILE_MODE=trace drives a traced request
# load through the threaded server and exits non-zero unless every
# request trace is a causally complete chain
VALIDATE_TRACE=target/experiments/trace_validation_ci.json
YOLLO_SCALE=tiny YOLLO_PROFILE_MODE=trace YOLLO_TRACE_PATH="$VALIDATE_TRACE" \
    cargo run --release -q -p yollo-bench --bin exp_profile
python3 -m json.tool "$VALIDATE_TRACE" > /dev/null

echo "== obs: no stray printing in the telemetry crate =="
# the obs crate must never write to stdout; sinks and trace files only
if grep -rn --include='*.rs' 'println!' crates/obs/src; then
    echo "error: println! in crates/obs/src" >&2
    exit 1
fi

echo "== rustfmt (tensor, nn, core, obs, serve) =="
cargo fmt --check -p yollo-tensor -p yollo-nn -p yollo-core -p yollo-obs -p yollo-serve

echo "== clippy -D warnings (tensor, nn, core, obs, serve) =="
cargo clippy -p yollo-tensor -p yollo-nn -p yollo-core -p yollo-obs -p yollo-serve --all-targets -- -D warnings

echo "ci.sh: all gates passed"
