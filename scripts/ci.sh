#!/usr/bin/env bash
# CI gate: tier-1 build + tests, then style/lint on the crates that own the
# compute backend and the fault-tolerant training stack. Run from anywhere;
# operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q --workspace

echo "== fault-injection suite =="
# crash/resume bit-equality, corrupted-checkpoint fallback, NaN skip and
# rollback recovery — run explicitly so a filtered-out suite fails loudly
cargo test -q -p yollo-core --test fault_tolerance

echo "== no ignored recovery tests =="
# recovery tests must never be parked behind #[ignore]
if grep -rn --include='*.rs' '#\[ignore' crates/core/tests crates/core/src/fault.rs crates/core/src/train.rs; then
    echo "error: ignored test(s) in the fault-tolerance suite" >&2
    exit 1
fi

echo "== rustfmt (tensor, nn, core) =="
cargo fmt --check -p yollo-tensor -p yollo-nn -p yollo-core

echo "== clippy -D warnings (tensor, nn, core) =="
cargo clippy -p yollo-tensor -p yollo-nn -p yollo-core --all-targets -- -D warnings

echo "ci.sh: all gates passed"
