//! Figure-5-style qualitative gallery: trains a model, then renders scenes
//! with the Rel2Att attention heat map and the predicted box to PPM images,
//! including query-swap pairs on the same image ("left circle" vs
//! "right circle").
//!
//! Run with: `cargo run --release --example attention_gallery`
//! Images land in `target/gallery/`.

use yollo::prelude::*;
use yollo::synthref::{render_ppm, Overlay};

fn main() -> std::io::Result<()> {
    let ds = Dataset::generate(DatasetConfig {
        train_images: 150,
        val_images: 30,
        test_images: 10,
        targets_per_image: 2,
        queries_per_target: 2,
        kind: DatasetKind::SynthRef,
        seed: 11,
    });
    let mut model = Yollo::for_dataset(&ds, 3);
    println!("training…");
    Trainer::new(TrainConfig {
        iterations: 350,
        batch_size: 12,
        eval_every: 0,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);

    let dir = std::path::Path::new("target/gallery");
    std::fs::create_dir_all(dir)?;
    let (fh, fw) = (model.config().feat_h(), model.config().feat_w());

    // a few validation samples
    for (i, sample) in ds.samples(Split::Val).iter().take(6).enumerate() {
        let scene = ds.scene_of(sample);
        let pred = model.predict_scene_query(scene, &sample.sentence);
        let path = dir.join(format!("val_{i}.ppm"));
        render_ppm(
            scene,
            &[
                Overlay::Heat {
                    values: pred.attention.clone(),
                    fh,
                    fw,
                },
                Overlay::Box {
                    bbox: pred.bbox,
                    rgb: [1.0, 0.0, 0.0],
                },
                Overlay::Box {
                    bbox: ds.target_bbox(sample),
                    rgb: [1.0, 1.0, 1.0],
                },
            ],
            &path,
        )?;
        println!(
            "{}  \"{}\"  IoU={:.2}",
            path.display(),
            sample.sentence,
            pred.bbox.iou(&ds.target_bbox(sample))
        );
    }

    // query-swap on one scene: same image, different query, box should move
    let scene = ds.scene_of(&ds.samples(Split::Val)[0]);
    for (i, query) in ["left circle", "right circle"].iter().enumerate() {
        let pred = model.predict_scene_query(scene, query);
        let path = dir.join(format!("swap_{i}.ppm"));
        render_ppm(
            scene,
            &[
                Overlay::Heat {
                    values: pred.attention.clone(),
                    fh,
                    fw,
                },
                Overlay::Box {
                    bbox: pred.bbox,
                    rgb: [1.0, 0.0, 0.0],
                },
            ],
            &path,
        )?;
        println!("{}  \"{query}\" -> {:?}", path.display(), pred.bbox);
    }
    Ok(())
}
