//! Model persistence: train briefly, save to JSON, reload, and verify the
//! reloaded model grounds identically — the deployment path for a trained
//! grounder.
//!
//! Run with: `cargo run --release --example checkpointing`

use yollo::prelude::*;

fn main() -> std::io::Result<()> {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRefPlus, 3));
    let mut model = Yollo::for_dataset(&ds, 1);
    Trainer::new(TrainConfig {
        iterations: 60,
        batch_size: 8,
        eval_every: 0,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);

    let dir = std::path::Path::new("target/checkpoints");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("yollo_synthref_plus.json");
    model.save(&path)?;
    println!(
        "saved {} parameters to {}",
        model.num_params(),
        path.display()
    );

    let restored = Yollo::load(&path)?;
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let a = model.predict_scene_query(scene, &sample.sentence);
    let b = restored.predict_scene_query(scene, &sample.sentence);
    assert_eq!(a.bbox, b.bbox, "restored model must predict identically");
    println!(
        "restored model reproduces prediction {:?} for \"{}\"",
        b.bbox, sample.sentence
    );
    Ok(())
}
