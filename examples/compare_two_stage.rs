//! Head-to-head: one-stage YOLLO vs the two-stage listener pipeline on the
//! same dataset — the paper's central claim (faster *and* more accurate)
//! in one program.
//!
//! Run with: `cargo run --release --example compare_two_stage`

use yollo::prelude::*;

fn main() {
    let ds = Dataset::generate(DatasetConfig {
        train_images: 120,
        val_images: 40,
        test_images: 10,
        targets_per_image: 2,
        queries_per_target: 2,
        kind: DatasetKind::SynthRef,
        seed: 5,
    });
    let vocab = ds.build_vocab();

    // --- one-stage YOLLO ---
    println!("training YOLLO…");
    let mut yollo = Yollo::for_dataset(&ds, 42);
    Trainer::new(TrainConfig {
        iterations: 300,
        batch_size: 12,
        eval_every: 0,
        ..TrainConfig::default()
    })
    .train(&mut yollo, &ds);
    let yollo_acc = yollo.evaluate(&ds, Split::Val);

    // --- two-stage: proposal RPN + listener ---
    println!("training two-stage baseline (RPN + listener)…");
    let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 9);
    rpn.train(&ds, 120, 4, 1);
    let roi = RoiExtractor::new(8, 2);
    let cache = CandidateCache::build(&rpn, roi, &ds);
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let mut listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 3);
    listener.train(&ds, &vocab, &cache, 600, 2);
    let grounder = TwoStageGrounder::new(&rpn, roi, &listener, &vocab, ds.max_query_len());
    let listener_acc = grounder.evaluate(&ds, Split::Val);

    // --- latency on one sample ---
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let t_yollo = time_inference(
        || {
            yollo.predict_scene_query(scene, &sample.sentence);
        },
        2,
        10,
    );
    let t_two = time_inference(
        || {
            grounder.ground(scene, &sample.tokens);
        },
        1,
        5,
    );

    let mut table = Table::new(["Method", "val ACC@0.5", "MIOU", "latency (s)"]);
    table.row([
        "two-stage listener".to_string(),
        format!("{:.3}", listener_acc.acc_at(0.5)),
        format!("{:.3}", listener_acc.miou()),
        format!("{:.4}", t_two.mean_s),
    ]);
    table.row([
        "YOLLO (one-stage)".to_string(),
        format!("{:.3}", yollo_acc.acc_at(0.5)),
        format!("{:.3}", yollo_acc.miou()),
        format!("{:.4}", t_yollo.mean_s),
    ]);
    println!("\n{table}");
    println!("speedup: {:.1}x", t_yollo.speedup_over(&t_two));
}
