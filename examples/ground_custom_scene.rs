//! Grounding queries against a hand-built scene — the "application" story:
//! your own layout, free-form queries, one forward pass each.
//!
//! Run with: `cargo run --release --example ground_custom_scene`

use yollo::prelude::*;
use yollo::synthref::{ColorName, SceneBuilder, ShapeKind};

fn main() {
    // a training distribution to learn the vocabulary/visuals from
    let ds = Dataset::generate(DatasetConfig {
        train_images: 150,
        val_images: 20,
        test_images: 10,
        targets_per_image: 2,
        queries_per_target: 2,
        kind: DatasetKind::SynthRef,
        seed: 13,
    });
    let mut model = Yollo::for_dataset(&ds, 4);
    println!("training…");
    Trainer::new(TrainConfig {
        iterations: 350,
        batch_size: 12,
        eval_every: 0,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);

    // a scene the model has never seen, laid out by hand
    let scene = SceneBuilder::new(72, 48)
        .object_centered(ShapeKind::Circle, ColorName::Red, 14.0, 14.0, 14.0, 14.0)
        .object_centered(ShapeKind::Circle, ColorName::Blue, 58.0, 14.0, 14.0, 14.0)
        .object_centered(ShapeKind::Square, ColorName::Green, 36.0, 36.0, 16.0, 12.0)
        .build();

    for query in [
        "the red circle",
        "the blue circle",
        "green square",
        "left circle",
        "right circle",
    ] {
        let pred = model.predict_scene_query(&scene, query);
        let (cx, cy) = pred.bbox.center();
        // which hand-placed object did we land on?
        let nearest = scene
            .objects
            .iter()
            .min_by(|a, b| {
                let da = dist2(a.bbox.center(), (cx, cy));
                let db = dist2(b.bbox.center(), (cx, cy));
                da.partial_cmp(&db).expect("finite")
            })
            .expect("scene has objects");
        println!(
            "\"{query}\" -> box centred ({cx:.0},{cy:.0}), nearest object: {} {}",
            nearest.color.word(),
            nearest.kind.word(),
        );
    }
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}
