//! Quickstart: generate a synthetic referring-expression dataset, train a
//! small YOLLO model for a few hundred steps, and ground some queries.
//!
//! Run with: `cargo run --release --example quickstart`

use yollo::prelude::*;

fn main() {
    // 1. data: a small RefCOCO-like synthetic dataset (deterministic)
    let ds = Dataset::generate(DatasetConfig {
        train_images: 120,
        val_images: 30,
        test_images: 10,
        targets_per_image: 2,
        queries_per_target: 2,
        kind: DatasetKind::SynthRef,
        seed: 7,
    });
    println!(
        "dataset: {} scenes, {} training queries, vocab {}",
        ds.scenes().len(),
        ds.samples(Split::Train).len(),
        ds.build_vocab().len()
    );

    // 2. model + training (word2vec-initialised embeddings, Adam)
    let mut model = Yollo::for_dataset(&ds, 42);
    let trainer = Trainer::new(TrainConfig {
        iterations: 300,
        batch_size: 12,
        eval_every: 100,
        ..TrainConfig::default()
    });
    println!("training YOLLO ({} parameters)…", model.num_params());
    let log = trainer.train(&mut model, &ds);
    for (it, acc) in log.val_curve() {
        println!("  iter {it:>4}: val ACC@0.5 = {acc:.3}");
    }

    // 3. evaluate
    let val = model.evaluate(&ds, Split::Val);
    println!(
        "val: ACC@0.5 = {:.3}, ACC@0.75 = {:.3}, MIOU = {:.3}",
        val.acc_at(0.5),
        val.acc_at(0.75),
        val.miou()
    );

    // 4. ground a free-form sentence on a validation scene
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let pred = model.predict_scene_query(scene, &sample.sentence);
    let gt = ds.target_bbox(sample);
    println!("\nquery: \"{}\"", sample.sentence);
    println!(
        "predicted {:?} (score {:.2}) — IoU with ground truth: {:.2}",
        pred.bbox,
        pred.score,
        pred.bbox.iou(&gt)
    );
}
