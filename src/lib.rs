//! # YOLLO — You Only Look & Listen Once (Rust reproduction)
//!
//! An end-to-end, from-scratch Rust reproduction of the one-stage visual
//! grounding system of *"You Only Look & Listen Once: Towards Fast and
//! Accurate Visual Grounding"*, including every substrate the paper
//! depends on: a tensor/autodiff engine, neural-network layers, CNN
//! backbones, word2vec, synthetic referring-expression datasets, detection
//! geometry, the YOLLO model itself, and the two-stage speaker/listener
//! baselines it is compared against.
//!
//! This umbrella crate re-exports the whole workspace behind one
//! dependency. The typical flow:
//!
//! ```
//! use yollo::prelude::*;
//!
//! // 1. generate a synthetic RefCOCO-like dataset
//! let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 7));
//! // 2. build and (briefly) train a YOLLO model
//! let mut model = Yollo::for_dataset(&ds, 42);
//! let log = Trainer::new(TrainConfig::quick()).train(&mut model, &ds);
//! assert!(log.points.len() > 0);
//! // 3. ground a free-form query in a scene
//! let scene = &ds.scenes()[0];
//! let pred = model.predict_scene_query(scene, "the red circle");
//! assert!(pred.bbox.w > 0.0);
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured results, and `examples/` for runnable programs.

pub use yollo_backbone as backbone;
pub use yollo_core as core;
pub use yollo_detect as detect;
pub use yollo_eval as eval;
pub use yollo_nn as nn;
pub use yollo_obs as obs;
pub use yollo_serve as serve;
pub use yollo_synthref as synthref;
pub use yollo_tensor as tensor;
pub use yollo_text as text;
pub use yollo_twostage as twostage;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use yollo_backbone::{Backbone, BackboneKind};
    pub use yollo_core::{
        AttentionAblation, FaultPlan, GroundingPrediction, RecoveryPolicy, TrainConfig,
        TrainOutcome, Trainer, Yollo, YolloConfig,
    };
    pub use yollo_detect::{AnchorGrid, AnchorSpec, BBox, MatchConfig};
    pub use yollo_eval::{time_inference, IouMetrics, Table};
    pub use yollo_nn::{Adam, Binder, Module, Optimizer};
    pub use yollo_serve::{ServeConfig, ServeError, Server};
    pub use yollo_synthref::{
        Dataset, DatasetConfig, DatasetKind, GroundingSample, Scene, SceneConfig, Split,
    };
    pub use yollo_tensor::{Graph, Tensor};
    pub use yollo_text::{tokenize, Vocab};
    pub use yollo_twostage::{
        CandidateCache, EnsembleScorer, GridProposals, Listener, ListenerConfig, ProposalConfig,
        ProposalNetwork, ProposalScorer, Proposer, RoiExtractor, Speaker, SpeakerConfig,
        TwoStageGrounder,
    };
}
